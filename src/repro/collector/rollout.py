"""Rollout runners: record a scheme's trajectory, or drive a learned policy.

Two entry points:

- :func:`collect_trajectory` — the Policy Collector path: run a kernel CC
  scheme in an environment while the GR unit records
  ``{state, action, reward}`` at every tick.
- :func:`run_policy` — the Execution-block path: at every tick, feed the GR
  state to a learned agent and enforce its cwnd-ratio action through
  :meth:`~repro.tcp.socket.TcpSender.set_cwnd`.

Both return a :class:`RolloutResult` carrying the trajectory arrays plus the
flow-level statistics the evaluation framework scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol

import numpy as np

from repro.collector.environments import EnvConfig, build_scenario
from repro.collector.gr_unit import GRUnit, STATE_DIM, WindowConfig
from repro.collector.rewards import (
    RewardConfig,
    DEFAULT_REWARDS,
    friendliness_reward,
    single_flow_reward,
)
from repro.tcp.flow import Flow, FlowStats

#: GR tick interval, seconds ("Sage's logic performs periodically in small
#: time intervals" — 20 ms matches the paper's lineage, Orca's epochs).
TICK = 0.02


class PolicyAgent(Protocol):
    """What :func:`run_policy` needs from a learned agent."""

    def reset(self) -> None:
        """Clear recurrent state before a fresh rollout."""

    def act(self, state: np.ndarray) -> float:
        """Map a raw 69-dim GR state to a cwnd ratio."""


@dataclass
class RolloutResult:
    """One recorded trajectory plus the flow-level outcome."""

    env: EnvConfig
    scheme: str
    states: np.ndarray  # (T, 69) raw Table-1 vectors
    actions: np.ndarray  # (T,) cwnd ratios
    rewards: np.ndarray  # (T,)
    stats: FlowStats
    competitor_stats: List[FlowStats] = field(default_factory=list)
    #: queue-level congestion signals summed over the scenario's links
    queue_drops: int = 0
    ecn_marks: int = 0

    @property
    def length(self) -> int:
        return len(self.actions)


def _reward_for(
    env: EnvConfig,
    flow: Flow,
    prev_bytes: int,
    prev_lost: int,
    interval: float,
    config: RewardConfig,
) -> float:
    delivered_bps = (flow.receiver.total_bytes - prev_bytes) * 8.0 / interval
    lost_bps = (flow.sender.lost_bytes - prev_lost) * 8.0 / interval
    if env.is_multi_flow:
        fair = env.fair_share_bps(env.n_sharing)
        return friendliness_reward(delivered_bps, fair, config)
    capacity = env.mean_capacity_bps()
    delay = flow.sender.srtt_or_min or env.min_rtt
    return single_flow_reward(
        delivered_bps, lost_bps, delay, capacity, env.min_rtt, config
    )


def _run(
    env: EnvConfig,
    scheme,
    agent: Optional[PolicyAgent],
    windows: Optional[WindowConfig],
    rewards: RewardConfig,
    tick: float,
) -> RolloutResult:
    loop, network, competitor_views = build_scenario(env)

    competitors: List[Flow] = []
    for i, view in enumerate(competitor_views):
        competitors.append(
            Flow(view, flow_id=100 + i, scheme="cubic", min_rtt=env.min_rtt)
        )
    flow = Flow(
        network,
        flow_id=0,
        scheme=scheme,
        min_rtt=env.min_rtt,
        start_at=env.competitor_head_start if competitors else 0.0,
    )
    if agent is not None:
        flow.sender.external_cwnd_control = True
        agent.reset()

    for comp in competitors:
        comp.start()
    flow.start()

    gr = GRUnit(flow.sender, windows=windows)
    # Preallocate the trajectory arrays: the tick count is known up front
    # (give or take float accumulation), so the hot loop writes into array
    # rows instead of growing Python lists of freshly-allocated vectors.
    capacity = int(round(env.duration / tick)) + 2
    states = np.empty((capacity, STATE_DIM))
    actions = np.empty(capacity)
    reward_arr = np.empty(capacity)

    t = flow.start_at
    prev_bytes = flow.receiver.total_bytes
    prev_lost = flow.sender.lost_bytes
    end = flow.start_at + env.duration
    sample_every = max(int(round(0.1 / tick)), 1)
    n_ticks = 0
    while t < end - 1e-9:
        t += tick
        loop.run_until(t)
        if n_ticks >= capacity:  # float-accumulation overshoot; rare
            capacity *= 2
            states = np.concatenate([states, np.empty_like(states)])
            actions = np.concatenate([actions, np.empty_like(actions)])
            reward_arr = np.concatenate([reward_arr, np.empty_like(reward_arr)])
        state, action = gr.tick(out=states[n_ticks])
        if agent is not None:
            ratio = float(agent.act(state))
            if ratio < 1.0 / 3.0:
                ratio = 1.0 / 3.0
            elif ratio > 3.0:
                ratio = 3.0
            flow.sender.set_cwnd(flow.sender.cwnd * ratio)
            action = ratio
            gr._last_cwnd = max(flow.sender.cwnd, 1.0)
        actions[n_ticks] = action
        reward_arr[n_ticks] = _reward_for(
            env, flow, prev_bytes, prev_lost, tick, rewards
        )
        prev_bytes = flow.receiver.total_bytes
        prev_lost = flow.sender.lost_bytes
        n_ticks += 1
        if n_ticks % sample_every == 0:
            flow.sample()
            for comp in competitors:
                comp.sample()

    flow.stop()
    for comp in competitors:
        comp.stop()

    link_stats = network.topology.link_stats()
    return RolloutResult(
        env=env,
        scheme=flow.cc.name if agent is None else getattr(agent, "name", "agent"),
        states=states[:n_ticks].copy(),
        actions=actions[:n_ticks].copy(),
        rewards=reward_arr[:n_ticks].copy(),
        stats=flow.stats(),
        competitor_stats=[c.stats() for c in competitors],
        queue_drops=sum(s["drops"] for s in link_stats),
        ecn_marks=sum(s["ecn_marks"] for s in link_stats),
    )


def collect_trajectory(
    env: EnvConfig,
    scheme: str,
    windows: Optional[WindowConfig] = None,
    rewards: RewardConfig = DEFAULT_REWARDS,
    tick: float = TICK,
) -> RolloutResult:
    """Run a kernel CC scheme in ``env`` and record its GR trajectory."""
    return _run(env, scheme, agent=None, windows=windows, rewards=rewards, tick=tick)


def run_policy(
    env: EnvConfig,
    agent: PolicyAgent,
    windows: Optional[WindowConfig] = None,
    rewards: RewardConfig = DEFAULT_REWARDS,
    tick: float = TICK,
    underlying_scheme: str = "newreno",
) -> RolloutResult:
    """Deploy a learned agent in ``env``: the agent owns the cwnd.

    The underlying scheme's loss machinery is bypassed
    (``external_cwnd_control``); only the transport plumbing is reused —
    this is the repo's TCP Pure.
    """
    return _run(
        env, underlying_scheme, agent=agent, windows=windows, rewards=rewards, tick=tick
    )
