#!/usr/bin/env python
"""Deploy the shipped pretrained Sage checkpoint on a few networks.

Run:  python examples/pretrained_demo.py
"""

import json
from pathlib import Path

import numpy as np

from repro.collector.environments import EnvConfig
from repro.collector.rollout import collect_trajectory, run_policy
from repro.core.agent import SageAgent
from repro.core.networks import NetworkConfig

MODEL_DIR = Path(__file__).resolve().parent.parent / "models"


def load_pretrained() -> SageAgent:
    meta = json.loads((MODEL_DIR / "sage_pretrained.json").read_text())
    cfg = NetworkConfig(
        enc_dim=meta["enc_dim"], gru_dim=meta["gru_dim"],
        n_components=meta["n_components"], n_atoms=meta["n_atoms"],
    )
    return SageAgent.load(MODEL_DIR / "sage_pretrained.npz", net_config=cfg)


def main() -> None:
    agent = load_pretrained()
    scenarios = [
        EnvConfig(env_id="mid-bdp", kind="flat", bw_mbps=36.0, min_rtt=0.03,
                  buffer_bdp=2.0, duration=12.0),
        EnvConfig(env_id="step-up", kind="step", bw_mbps=24.0, min_rtt=0.04,
                  buffer_bdp=2.0, step_m=2.0, step_at=6.0, duration=12.0),
        EnvConfig(env_id="vs-cubic", kind="flat", bw_mbps=24.0, min_rtt=0.04,
                  buffer_bdp=4.0, n_competing_cubic=1, duration=16.0),
    ]
    print(f"{'scenario':>10} {'who':>6} {'thr (Mbps)':>11} {'owd (ms)':>9}")
    for env in scenarios:
        sage = run_policy(env, agent)
        cubic = collect_trajectory(env, "cubic")
        for who, r in (("sage", sage), ("cubic", cubic)):
            print(f"{env.env_id:>10} {who:>6} "
                  f"{r.stats.avg_throughput_bps / 1e6:11.2f} "
                  f"{r.stats.avg_owd * 1e3:9.1f}")


if __name__ == "__main__":
    main()
