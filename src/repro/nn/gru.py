"""Gated Recurrent Unit (Chung et al. 2014).

Fig. 6's memory component: the GRU lets Sage's policy propagate hidden state
across timesteps, which the ablation (Fig. 12) shows is the single most
important architectural piece.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.autograd import Tensor, concat
from repro.nn.layers import Linear, Module


class GRU(Module):
    """Single-layer GRU cell, unrolled step-by-step.

    Gates (standard formulation)::

        z = sigmoid(W_z [x, h])
        r = sigmoid(W_r [x, h])
        n = tanh(W_n [x, r*h])
        h' = (1 - z) * n + z * h
    """

    def __init__(self, in_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        self.hidden_dim = hidden_dim
        self.wz = Linear(in_dim + hidden_dim, hidden_dim, rng)
        self.wr = Linear(in_dim + hidden_dim, hidden_dim, rng)
        self.wn = Linear(in_dim + hidden_dim, hidden_dim, rng)

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_dim)))

    def step(self, x: Tensor, h: Tensor) -> Tensor:
        """One timestep: (B, in_dim), (B, H) -> (B, H)."""
        xh = concat([x, h], axis=-1)
        z = self.wz(xh).sigmoid()
        r = self.wr(xh).sigmoid()
        xrh = concat([x, r * h], axis=-1)
        n = self.wn(xrh).tanh()
        return (1.0 - z) * n + z * h

    def forward(
        self, xs: List[Tensor], h0: Optional[Tensor] = None
    ) -> Tuple[List[Tensor], Tensor]:
        """Unroll over a list of per-timestep inputs (each (B, in_dim)).

        Returns the list of hidden states and the final hidden state.
        """
        if not xs:
            raise ValueError("empty input sequence")
        h = h0 if h0 is not None else self.initial_state(xs[0].shape[0])
        outs: List[Tensor] = []
        for x in xs:
            h = self.step(x, h)
            outs.append(h)
        return outs, h
