"""Fig. 13 — Sage's Similarity Indices to the pool schemes.

Eight environments, one row each: the cosine similarity of Sage's
trajectories to each scheme's trajectories. Paper shape: the most-similar
scheme *changes across environments* — the learned model is not a clone of
any single heuristic.
"""

from conftest import SCALE, bench_pool_schemes, once

from repro.collector.environments import EnvConfig
from repro.collector.rollout import collect_trajectory, run_policy
from repro.evalx.similarity import similarity_table

N_ENVS = {"tiny": 4, "small": 8, "full": 8}[SCALE]


def _envs():
    base = [
        (24.0, 0.04, 2.0, 0), (48.0, 0.02, 1.0, 0), (12.0, 0.06, 4.0, 0),
        (24.0, 0.04, 4.0, 1), (48.0, 0.04, 2.0, 1), (12.0, 0.02, 8.0, 0),
        (24.0, 0.02, 0.5, 0), (48.0, 0.06, 8.0, 1),
    ][:N_ENVS]
    return [
        EnvConfig(
            env_id=f"fig13-{i}", kind="flat", bw_mbps=bw, min_rtt=rtt,
            buffer_bdp=buf, n_competing_cubic=nc, duration=8.0,
        )
        for i, (bw, rtt, buf, nc) in enumerate(base)
    ]


def test_fig13_similarity_indices(benchmark, sage_agent):
    envs = _envs()
    schemes = bench_pool_schemes()[:5]

    def run():
        sage_rollouts = [run_policy(env, sage_agent) for env in envs]
        scheme_rollouts = {
            s: [collect_trajectory(env, s) for env in envs] for s in schemes
        }
        return similarity_table(sage_rollouts, scheme_rollouts)

    table = once(benchmark, run)
    print("\n=== Fig. 13: Similarity Indices (rows = envs) ===")
    header = "env   " + "  ".join(f"{s:>9}" for s in schemes)
    print(header)
    winners = []
    for i in range(len(envs)):
        row = [table[s][i] for s in schemes]
        winners.append(schemes[row.index(max(row))])
        print(f"{i:>3}   " + "  ".join(f"{v:9.4f}" for v in row))
    print("most similar per env:", winners)
    for s in schemes:
        assert all(-1.0 <= v <= 1.0 for v in table[s])
