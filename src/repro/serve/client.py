"""Thin clients of the serving engine.

:class:`ServedAgent` satisfies the
:class:`~repro.collector.rollout.PolicyAgent` protocol while routing every
``act()`` through a :class:`~repro.serve.engine.PolicyServer` — so the
whole evaluation stack (``run_policy``, leagues, internet paths) can
exercise the serving tier, deadline machinery included, without knowing it
exists. Pass a shared server to multiplex several agents through one
hidden-state table; by default each agent owns a private single-flow
server.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.networks import SagePolicy
from repro.serve.engine import PolicyServer, ServeConfig


class ServedAgent:
    """A PolicyAgent whose decisions come from a :class:`PolicyServer`."""

    def __init__(
        self,
        policy: SagePolicy,
        deterministic: bool = False,
        seed: int = 0,
        name: str = "sage-served",
        config: Optional[ServeConfig] = None,
        server: Optional[PolicyServer] = None,
        flow_id: int = 0,
        distilled=None,
    ) -> None:
        self.policy = policy
        self.name = name
        self.seed = seed
        self.flow_id = flow_id
        #: optional DistilledPolicy mounted as tier 0 of the private server
        self.distilled = distilled
        #: sample stream for stochastic deployment; persists across resets
        #: (and is reseeded per task by the parallel league runner, exactly
        #: like SageAgent's)
        self.rng = np.random.default_rng(seed)
        self._shared_server = server
        if config is None:
            config = ServeConfig(deterministic=deterministic, seed=seed)
        self.config = config
        self.server: Optional[PolicyServer] = None

    # -- PolicyAgent protocol -------------------------------------------
    def reset(self) -> None:
        """Open a fresh serving session (private server unless shared)."""
        if self._shared_server is not None:
            self.server = self._shared_server
        else:
            self.server = PolicyServer(
                self.policy, self.config, distilled=self.distilled
            )
        if self.flow_id in getattr(self.server, "_sessions", {}):
            self.server.close(self.flow_id)
        self.server.connect(self.flow_id, rng=self.rng)

    def act(self, state: np.ndarray) -> float:
        if self.server is None:
            raise RuntimeError(
                "ServedAgent.act() called before reset(); reset() opens the "
                "serving session"
            )
        return float(self.server.serve_one(self.flow_id, state).ratio)

    def metrics_snapshot(self) -> dict:
        """Serving metrics of the underlying server (empty before reset)."""
        return {} if self.server is None else self.server.metrics.snapshot()
