"""The bottleneck link: a work-conserving serializer behind an AQM buffer.

The link drains its buffer one packet at a time; a packet of size ``S`` bytes
occupies the serializer for ``8*S / rate(t)`` seconds, where ``rate`` comes
from a :class:`~repro.netsim.traces.RateProcess`. This reproduces Mahimahi's
model of a single trace-driven bottleneck.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.aqm import AQM
from repro.netsim.engine import EventLoop
from repro.netsim.packet import Packet
from repro.netsim.traces import RateProcess


class Link:
    """Work-conserving bottleneck with a pluggable buffer discipline.

    Parameters
    ----------
    loop:
        The simulation event loop.
    rate:
        Capacity process (bits/second over time).
    aqm:
        The buffer/queue discipline.
    on_deliver:
        Called with each packet the instant its serialization completes
        (propagation delay is added by the :class:`~repro.netsim.network.Network`).
    """

    def __init__(
        self,
        loop: EventLoop,
        rate: RateProcess,
        aqm: AQM,
        on_deliver: Callable[[Packet], None],
    ) -> None:
        self.loop = loop
        self.rate = rate
        self.aqm = aqm
        self.on_deliver = on_deliver
        self._busy = False
        self.delivered_packets = 0
        self.delivered_bytes = 0
        #: Optional :class:`~repro.netsim.telemetry.QueueTelemetryRecorder`;
        #: None keeps the fast path untouched (event streams bit-identical).
        self.telemetry = None
        self._stalled_until = 0.0
        self.stalls = 0

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Offer a packet to the bottleneck; returns False if the AQM dropped it."""
        now = self.loop.now
        self.aqm.current_rate_bps = self.rate.rate_at(now)
        accepted = self.aqm.enqueue(pkt, now)
        if accepted and self.telemetry is not None:
            self.telemetry.on_enqueue(self.aqm, pkt, now)
        if accepted and not self._busy:
            self._serve_next()
        return accepted

    # ------------------------------------------------------------------
    def schedule_stall(self, at: float, duration: float) -> None:
        """Freeze the dequeue side for ``duration`` seconds starting at ``at``.

        The buffer keeps accepting (and AQM-policing) arrivals; only service
        stops — the chaos model of a head-of-line scheduler hiccup.
        """
        if duration <= 0:
            return
        self.loop.call_later(
            max(at - self.loop.now, 0.0), lambda d=duration: self._begin_stall(d)
        )

    def _begin_stall(self, duration: float) -> None:
        self._stalled_until = self.loop.now + duration
        self.stalls += 1
        self.loop.call_later(duration, self._end_stall)

    def _end_stall(self) -> None:
        if not self._busy and self.loop.now >= self._stalled_until:
            self._serve_next()

    # ------------------------------------------------------------------
    def _serve_next(self) -> None:
        now = self.loop.now
        if now < self._stalled_until:
            self._busy = False
            return
        self.aqm.current_rate_bps = self.rate.rate_at(now)
        pkt = self.aqm.dequeue(now)
        if pkt is None:
            self._busy = False
            return
        if self.telemetry is not None:
            self.telemetry.on_dequeue(pkt, now)
        self._busy = True
        tx_time = pkt.size * 8.0 / max(self.rate.rate_at(now), 1e3)
        self.loop.call_later(tx_time, lambda p=pkt: self._finish(p))

    def _finish(self, pkt: Packet) -> None:
        self.delivered_packets += 1
        self.delivered_bytes += pkt.size
        self.on_deliver(pkt)
        self._serve_next()

    # ------------------------------------------------------------------
    @property
    def queue_bytes(self) -> int:
        """Current backlog in bytes (excludes the packet in the serializer)."""
        return self.aqm.bytes_queued

    def queue_delay(self) -> float:
        """Current standing queueing delay estimate in seconds."""
        self.aqm.current_rate_bps = self.rate.rate_at(self.loop.now)
        return self.aqm.queue_delay_estimate()

    drops = property(lambda self: self.aqm.drops)
    ecn_marks = property(lambda self: self.aqm.ecn_marks)
