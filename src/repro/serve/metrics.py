"""Serving metrics: inference latency, batch sizes, per-tier accounting.

The serving engine records one sample per NN forward (one batched tick)
plus per-decision outcome counters. With the tiered router, decisions also
roll up into **tiers**:

- tier 0 (``symbolic``): answered by the distilled tree's fast path;
- tier 1 (``nn``): the batched NN forward — both fresh ``policy`` answers
  and ``stale`` holds (a stale decision is the NN tier missing its
  deadline, not a different answerer);
- tier 2 (``heuristic``): the CUBIC/AIMD fallback.

``snapshot()`` renders the JSON-able summary that ``BENCH_serve.json``,
the CLI, and the harness report. ``invalid_actions`` keeps its historical
meaning: non-finite policy outputs caught before they reach a sender.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

#: decision provenance labels, in reporting order
SOURCES = ("policy", "symbolic", "stale", "heuristic")

#: router tiers, in reporting order (sources roll up into these)
TIERS = ("symbolic", "nn", "heuristic")

#: tiers that carry their own latency samples ("nn" reuses the tick timer)
_TIER_LATENCY_KEYS = ("symbolic", "heuristic")


class ServingMetrics:
    """Rolling counters for one :class:`~repro.serve.engine.PolicyServer`."""

    __slots__ = ("latencies_s", "batch_hist", "sources", "ticks", "decisions",
                 "deadline_misses", "invalid_actions", "tier_latencies_s",
                 "fcts_s", "flows_abandoned")

    def __init__(self) -> None:
        self.latencies_s: List[float] = []
        self.batch_hist: Dict[int, int] = {}
        self.sources: Dict[str, int] = {s: 0 for s in SOURCES}
        self.ticks = 0
        self.decisions = 0
        self.deadline_misses = 0  # ticks whose forward blew the budget
        self.invalid_actions = 0  # non-finite policy outputs caught pre-apply
        self.tier_latencies_s: Dict[str, List[float]] = {
            k: [] for k in _TIER_LATENCY_KEYS
        }
        # open-loop workload serving: per-flow completion times (simulated
        # seconds) and flows abandoned unfinished at the horizon
        self.fcts_s: List[float] = []
        self.flows_abandoned = 0

    # ------------------------------------------------------------------
    def record_tick(
        self, batch_size: int, latency_s: float, missed_deadline: bool
    ) -> None:
        self.ticks += 1
        self.latencies_s.append(latency_s)
        self.batch_hist[batch_size] = self.batch_hist.get(batch_size, 0) + 1
        if missed_deadline:
            self.deadline_misses += 1

    def record_decision(self, source: str) -> None:
        self.sources[source] += 1
        self.decisions += 1

    def record_decisions(self, source: str, n: int) -> None:
        """Bulk :meth:`record_decision` (the symbolic tier commits in batch)."""
        self.sources[source] += n
        self.decisions += n

    def record_tier_latency(self, tier: str, latency_s: float) -> None:
        """One latency sample for a non-NN tier ("symbolic" / "heuristic")."""
        self.tier_latencies_s[tier].append(latency_s)

    def record_fct(self, fct_s: float) -> None:
        """One served flow finished its transfer after ``fct_s`` sim-seconds."""
        self.fcts_s.append(fct_s)

    def record_abandoned(self, n: int = 1) -> None:
        """``n`` served flows were still unfinished at the run horizon."""
        self.flows_abandoned += n

    # ------------------------------------------------------------------
    # snapshot/restore (server crash tolerance) + memory-pressure shrink
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Full JSON-able state (unlike :meth:`snapshot`, loses nothing).

        Python's ``json`` round-trips floats exactly (shortest-repr), so
        a restored metrics object reports bit-identical percentiles.
        """
        return {
            "latencies_s": list(self.latencies_s),
            "batch_hist": {str(k): v for k, v in self.batch_hist.items()},
            "sources": dict(self.sources),
            "ticks": self.ticks,
            "decisions": self.decisions,
            "deadline_misses": self.deadline_misses,
            "invalid_actions": self.invalid_actions,
            "tier_latencies_s": {
                k: list(v) for k, v in self.tier_latencies_s.items()
            },
            "fcts_s": list(self.fcts_s),
            "flows_abandoned": self.flows_abandoned,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ServingMetrics":
        """Rebuild a metrics object from :meth:`to_state` output."""
        m = cls()
        m.latencies_s = [float(v) for v in state.get("latencies_s", [])]
        m.batch_hist = {
            int(k): int(v) for k, v in state.get("batch_hist", {}).items()
        }
        m.sources.update(
            {str(k): int(v) for k, v in state.get("sources", {}).items()}
        )
        m.ticks = int(state.get("ticks", 0))
        m.decisions = int(state.get("decisions", 0))
        m.deadline_misses = int(state.get("deadline_misses", 0))
        m.invalid_actions = int(state.get("invalid_actions", 0))
        for k, v in state.get("tier_latencies_s", {}).items():
            m.tier_latencies_s[str(k)] = [float(x) for x in v]
        m.fcts_s = [float(v) for v in state.get("fcts_s", [])]
        m.flows_abandoned = int(state.get("flows_abandoned", 0))
        return m

    def shrink(self, keep: int = 4096) -> int:
        """Drop the oldest latency/FCT samples, keeping the last ``keep``.

        The memory-pressure release valve for long soaks: the per-sample
        lists are the only unbounded state here, while every counter and
        the batch histogram stay exact. Returns the number of samples
        dropped.
        """
        keep = max(int(keep), 0)
        dropped = 0
        for samples in (
            self.latencies_s, self.fcts_s, *self.tier_latencies_s.values()
        ):
            excess = len(samples) - keep
            if excess > 0:
                del samples[:excess]
                dropped += excess
        return dropped

    # ------------------------------------------------------------------
    def latency_percentile_ms(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(self.latencies_s, q)) * 1e3

    def fct_percentile_ms(self, q: float) -> float:
        if not self.fcts_s:
            return 0.0
        return float(np.percentile(self.fcts_s, q)) * 1e3

    def tier_latency_percentile_ms(self, tier: str, q: float) -> float:
        """Latency percentile for one tier; "nn" maps to the tick timer."""
        if tier == "nn":
            return self.latency_percentile_ms(q)
        samples = self.tier_latencies_s[tier]
        if not samples:
            return 0.0
        return float(np.percentile(samples, q)) * 1e3

    @property
    def tier_decisions(self) -> Dict[str, int]:
        """Decision counts rolled up by router tier."""
        return {
            "symbolic": self.sources["symbolic"],
            "nn": self.sources["policy"] + self.sources["stale"],
            "heuristic": self.sources["heuristic"],
        }

    @property
    def symbolic_hit_rate(self) -> float:
        """Fraction of all decisions answered by the tier-0 fast path."""
        if self.decisions == 0:
            return 0.0
        return self.sources["symbolic"] / self.decisions

    @property
    def fallback_rate(self) -> float:
        """Fraction of decisions not served fresh from the policy tiers."""
        if self.decisions == 0:
            return 0.0
        return (self.sources["stale"] + self.sources["heuristic"]) / self.decisions

    def snapshot(self) -> dict:
        """JSON-able summary of everything recorded so far."""
        tiers = {}
        counts = self.tier_decisions
        for tier in TIERS:
            tiers[tier] = {
                "decisions": counts[tier],
                "latency_p50_ms": round(
                    self.tier_latency_percentile_ms(tier, 50.0), 4
                ),
                "latency_p99_ms": round(
                    self.tier_latency_percentile_ms(tier, 99.0), 4
                ),
            }
        snap = {
            "ticks": self.ticks,
            "decisions": self.decisions,
            "deadline_misses": self.deadline_misses,
            "invalid_actions": self.invalid_actions,
            "latency_p50_ms": round(self.latency_percentile_ms(50.0), 4),
            "latency_p99_ms": round(self.latency_percentile_ms(99.0), 4),
            "batch_hist": {str(k): v for k, v in sorted(self.batch_hist.items())},
            "sources": dict(self.sources),
            "tiers": tiers,
            "symbolic_hit_rate": round(self.symbolic_hit_rate, 6),
            "fallback_rate": round(self.fallback_rate, 6),
        }
        if self.fcts_s or self.flows_abandoned:
            snap["fct"] = {
                "n_completed": len(self.fcts_s),
                "n_abandoned": self.flows_abandoned,
                "p50_ms": round(self.fct_percentile_ms(50.0), 4),
                "p95_ms": round(self.fct_percentile_ms(95.0), 4),
                "p99_ms": round(self.fct_percentile_ms(99.0), 4),
            }
        return snap
