"""Tests for the open-loop workload layer (`repro.workload`).

Covers schedule generation (determinism, distributions, web sessions),
finite flows, end-to-end FCT accounting, the chaos injection points
(`workload.burst`, `netsim.linkflap`), and the served-workload mode.
"""

import numpy as np
import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.core.networks import NetworkConfig, SagePolicy
from repro.netsim.aqm import TailDrop
from repro.netsim.topo import dumbbell_topology, parking_lot_topology
from repro.netsim.traces import FlatRate
from repro.serve.harness import WorkloadServeConfig, run_served_workload
from repro.tcp.flow import Flow
from repro.workload import (
    FctRecord,
    FctSummary,
    WorkloadConfig,
    generate_schedule,
    run_workload,
    schedule_digest,
)

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=3, n_atoms=7)


def _dumbbell(bw=48e6, buf=120_000):
    return dumbbell_topology(FlatRate(bw), TailDrop(buf))


# ---------------------------------------------------------------------------
# schedule generation
# ---------------------------------------------------------------------------


class TestGenerateSchedule:
    def test_deterministic_per_seed(self):
        cfg = WorkloadConfig(arrival_rate=200.0, duration=5.0, seed=11)
        a, b = generate_schedule(cfg), generate_schedule(cfg)
        assert schedule_digest(a) == schedule_digest(b)
        assert [x.time for x in a] == [x.time for x in b]
        assert [x.total_bytes for x in a] == [x.total_bytes for x in b]

    def test_seed_changes_schedule(self):
        base = WorkloadConfig(arrival_rate=200.0, duration=5.0, seed=1)
        other = WorkloadConfig(arrival_rate=200.0, duration=5.0, seed=2)
        assert schedule_digest(generate_schedule(base)) != schedule_digest(
            generate_schedule(other)
        )

    def test_poisson_count_near_rate(self):
        cfg = WorkloadConfig(arrival_rate=300.0, duration=10.0, seed=0)
        n = len(generate_schedule(cfg))
        assert 2400 < n < 3600  # 3000 +- many sigma

    def test_arrivals_ordered_within_window(self):
        sched = generate_schedule(
            WorkloadConfig(arrival_rate=100.0, duration=4.0, seed=3)
        )
        times = [a.time for a in sched]
        assert times == sorted(times)
        assert all(0.0 <= t < 4.0 for t in times)

    @pytest.mark.parametrize("dist", ["pareto", "lognormal", "fixed"])
    def test_size_distributions_clamped_and_sane(self, dist):
        cfg = WorkloadConfig(
            arrival_rate=400.0, duration=5.0, size_dist=dist,
            mean_size_bytes=40_000.0, max_size_bytes=2_000_000, seed=5,
        )
        sizes = [
            r.size_bytes for a in generate_schedule(cfg) for r in a.requests
        ]
        assert all(64 <= s <= 2_000_000 for s in sizes)
        mean = float(np.mean(sizes))
        if dist == "fixed":
            assert mean == 40_000.0
        else:
            assert 15_000 < mean < 90_000  # heavy tails, clamped above

    def test_web_sessions_have_multiple_requests(self):
        cfg = WorkloadConfig(
            arrival_rate=100.0, duration=5.0, requests_per_session=4.0,
            think_time=0.1, seed=9,
        )
        sched = generate_schedule(cfg)
        per_session = [len(a.requests) for a in sched]
        assert max(per_session) > 1
        assert 2.0 < float(np.mean(per_session)) < 7.0
        # first request of a session is immediate; later ones think
        for a in sched:
            assert a.requests[0].think_time == 0.0
            assert all(r.think_time > 0.0 for r in a.requests[1:])

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(arrival_rate=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(size_dist="uniform")


# ---------------------------------------------------------------------------
# finite flows
# ---------------------------------------------------------------------------


class TestFiniteFlows:
    def test_flow_completes_and_reports_time(self):
        topo = _dumbbell()
        done = []
        flow = Flow(topo.view(("snd", "rcv")), flow_id=1, scheme="cubic",
                    min_rtt=0.04, size_bytes=150_000)
        flow.sender.on_complete = lambda s: done.append(topo.loop.now)
        flow.start()
        topo.loop.run_until(10.0)
        assert flow.sender.completed_at is not None
        assert done == [flow.sender.completed_at]
        # 150 KB over 48 Mbps with a 40 ms RTT: more than one RTT, well
        # under a second
        assert 0.04 < flow.sender.completed_at < 1.0

    def test_unbounded_flow_never_completes(self):
        topo = _dumbbell()
        flow = Flow(topo.view(("snd", "rcv")), flow_id=1, scheme="cubic",
                    min_rtt=0.04)
        flow.start()
        topo.loop.run_until(2.0)
        assert flow.sender.completed_at is None

    def test_tiny_flow_rounds_up_to_one_packet(self):
        topo = _dumbbell()
        flow = Flow(topo.view(("snd", "rcv")), flow_id=1, scheme="cubic",
                    min_rtt=0.04, size_bytes=10)
        flow.start()
        topo.loop.run_until(2.0)
        assert flow.sender.size_pkts == 1
        assert flow.sender.completed_at is not None


# ---------------------------------------------------------------------------
# end-to-end workload runs
# ---------------------------------------------------------------------------


class TestRunWorkload:
    def test_all_flows_complete_and_fcts_positive(self):
        res = run_workload(
            _dumbbell(),
            WorkloadConfig(arrival_rate=100.0, duration=2.0,
                           mean_size_bytes=20_000.0, seed=4),
        )
        assert res.summary.n_completed == res.summary.n_flows > 100
        assert res.summary.p50_s > 0.0
        assert res.summary.p99_s >= res.summary.p50_s
        assert res.peak_concurrent >= 1

    def test_deterministic_per_seed(self):
        cfg = WorkloadConfig(arrival_rate=80.0, duration=2.0, seed=6)
        a = run_workload(_dumbbell(), cfg)
        b = run_workload(_dumbbell(), cfg)
        assert a.digest == b.digest
        assert a.summary.to_json() == b.summary.to_json()
        assert [(r.flow_id, r.finish) for r in a.records] == [
            (r.flow_id, r.finish) for r in b.records
        ]

    def test_parking_lot_round_robins_sources(self):
        topo = parking_lot_topology(n_segments=2, bw_mbps=48.0)
        res = run_workload(
            topo,
            WorkloadConfig(arrival_rate=60.0, duration=1.5,
                           mean_size_bytes=15_000.0, seed=2),
        )
        assert res.summary.n_completed > 50

    def test_slowdown_at_least_one(self):
        res = run_workload(
            _dumbbell(),
            WorkloadConfig(arrival_rate=50.0, duration=1.5, seed=8),
        )
        assert res.summary.mean_slowdown >= 1.0

    def test_size_buckets_partition_records(self):
        res = run_workload(
            _dumbbell(),
            WorkloadConfig(arrival_rate=150.0, duration=2.0,
                           mean_size_bytes=80_000.0, seed=12),
        )
        assert sum(b["n"] for b in res.summary.buckets.values()) == (
            res.summary.n_flows
        )


class TestFctSummary:
    def test_incomplete_records_counted_not_ranked(self):
        records = [
            FctRecord(flow_id=1, arrival_index=0, size_bytes=10_000,
                      start=0.0, finish=0.5),
            FctRecord(flow_id=2, arrival_index=1, size_bytes=10_000,
                      start=0.1, finish=None),
        ]
        summary = FctSummary.from_records(records, base_rtt=0.04,
                                          bottleneck_bps=48e6)
        assert summary.n_flows == 2
        assert summary.n_completed == 1
        assert summary.p50_s == pytest.approx(0.5)

    def test_empty(self):
        summary = FctSummary.from_records([], base_rtt=0.04,
                                          bottleneck_bps=48e6)
        assert summary.n_flows == 0
        assert summary.to_json()["n_completed"] == 0

    def test_queue_signals_surfaced(self):
        summary = FctSummary.from_records([], base_rtt=0.04,
                                          bottleneck_bps=48e6,
                                          drops=7, ecn_marks=3)
        js = summary.to_json()
        assert js["drops"] == 7 and js["ecn_marks"] == 3


# ---------------------------------------------------------------------------
# chaos: workload.burst + netsim.linkflap, one-shot with clean replay
# ---------------------------------------------------------------------------


class TestWorkloadChaos:
    def test_burst_injects_extra_sessions_once(self):
        cfg = WorkloadConfig(arrival_rate=50.0, duration=2.0, seed=3)
        clean = generate_schedule(cfg)
        chaos = FaultInjector(FaultPlan(seed=0, faults=[
            FaultSpec("workload.burst", target=5, param=16.0),
        ]))
        burst = generate_schedule(cfg, chaos=chaos)
        assert len(burst) == len(clean) + 16
        extras = [a for a in burst if a.burst]
        assert len(extras) == 16
        # all clones share the trigger arrival's time (synchronized burst)
        assert len({a.time for a in extras}) == 1
        # consumed: the retry generates the clean schedule again
        retry = generate_schedule(cfg, chaos=chaos)
        assert schedule_digest(retry) == schedule_digest(clean)

    def test_burst_clones_draw_fresh_sizes(self):
        cfg = WorkloadConfig(arrival_rate=50.0, duration=2.0, seed=3)
        chaos = FaultInjector(FaultPlan(seed=0, faults=[
            FaultSpec("workload.burst", target=5, param=8.0),
        ]))
        burst = generate_schedule(cfg, chaos=chaos)
        sizes = {a.total_bytes for a in burst if a.burst}
        assert len(sizes) > 1  # not byte-identical clones

    def test_linkflap_fires_once_and_replays_clean(self):
        chaos = FaultInjector(FaultPlan(seed=0, faults=[
            FaultSpec("netsim.linkflap", target=0, param=0.5),
        ]))
        cfg = WorkloadConfig(arrival_rate=60.0, duration=2.0, seed=5)
        flapped = run_workload(_dumbbell(), cfg, chaos=chaos)
        assert flapped.flapped_links == [0]
        assert chaos.exhausted
        retry = run_workload(_dumbbell(), cfg, chaos=chaos)
        assert retry.flapped_links == []
        baseline = run_workload(_dumbbell(), cfg)
        assert retry.summary.to_json() == baseline.summary.to_json()
        # the flap hurt: fewer completions or worse tail than clean
        assert (
            flapped.summary.n_completed < baseline.summary.n_completed
            or flapped.summary.p99_s > baseline.summary.p99_s
        )

    def test_aqmstall_fires_once_and_replays_clean(self):
        chaos = FaultInjector(FaultPlan(seed=0, faults=[
            FaultSpec("netsim.aqmstall", target=0, param=0.4),
        ]))
        cfg = WorkloadConfig(arrival_rate=60.0, duration=2.0, seed=5)
        stalled = run_workload(_dumbbell(), cfg, chaos=chaos)
        assert stalled.stalled_links == [0]
        assert chaos.exhausted
        retry = run_workload(_dumbbell(), cfg, chaos=chaos)
        assert retry.stalled_links == []
        baseline = run_workload(_dumbbell(), cfg)
        # consumed fault -> the retry is bit-identical to a chaos-free run
        assert retry.summary.to_json() == baseline.summary.to_json()
        # the freeze hurt: fewer completions or a worse tail than clean
        assert (
            stalled.summary.n_completed < baseline.summary.n_completed
            or stalled.summary.p99_s > baseline.summary.p99_s
        )
        # service recovered after the stall: flows kept completing
        assert stalled.summary.n_completed > 0

    def test_aqmstall_counts_on_link_stats(self):
        chaos = FaultInjector(FaultPlan(seed=0, faults=[
            FaultSpec("netsim.aqmstall", target=0, param=0.3),
        ]))
        cfg = WorkloadConfig(arrival_rate=40.0, duration=1.5, seed=9)
        res = run_workload(_dumbbell(), cfg, chaos=chaos)
        assert res.link_stats[0]["stalls"] == 1
        assert "links" in res.to_json()


# ---------------------------------------------------------------------------
# served workloads (open-loop serving mode)
# ---------------------------------------------------------------------------


class TestServedWorkload:
    def _policy(self):
        return SagePolicy(TINY, np.random.default_rng(0))

    def test_fct_lands_in_serving_metrics(self):
        cfg = WorkloadServeConfig(arrival_rate=60.0, duration=1.0,
                                  drain=2.0, mean_size_bytes=15_000.0,
                                  seed=2)
        res = run_served_workload(self._policy(), cfg)
        fct = res.metrics["fct"]
        assert fct["n_completed"] + fct["n_abandoned"] == res.n_requests
        assert fct["n_completed"] > 0
        assert fct["p99_ms"] >= fct["p50_ms"] > 0.0
        assert res.metrics["decisions"] > 0  # flows actually got served

    def test_deterministic(self):
        cfg = WorkloadServeConfig(arrival_rate=60.0, duration=1.0,
                                  drain=2.0, seed=7)
        a = run_served_workload(self._policy(), cfg)
        b = run_served_workload(self._policy(), cfg)
        assert a.metrics["fct"] == b.metrics["fct"]
        assert a.fct.to_json() == b.fct.to_json()

    def test_topology_classes_supported(self):
        cfg = WorkloadServeConfig(topology="parking_lot", arrival_rate=40.0,
                                  duration=1.0, drain=2.0, bw_mbps=24.0,
                                  min_rtt=0.04, seed=1)
        res = run_served_workload(self._policy(), cfg)
        assert res.fct.n_completed > 0
