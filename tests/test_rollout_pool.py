"""Tests for the rollout runner and the policy pool."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collector.environments import EnvConfig
from repro.collector.gr_unit import STATE_DIM
from repro.collector.pool import PolicyPool, Trajectory
from repro.collector.rollout import collect_trajectory, run_policy


def mini_env(multi=False, duration=4.0):
    return EnvConfig(
        env_id="mini-multi" if multi else "mini",
        kind="flat",
        bw_mbps=12.0,
        min_rtt=0.04,
        buffer_bdp=2.0,
        n_competing_cubic=1 if multi else 0,
        duration=duration,
    )


class ConstantAgent:
    """Always emits the same cwnd ratio."""

    name = "const"

    def __init__(self, ratio=1.0):
        self.ratio = ratio

    def reset(self):
        pass

    def act(self, state):
        return self.ratio


class TestCollectTrajectory:
    def test_shapes_consistent(self):
        r = collect_trajectory(mini_env(), "cubic")
        assert r.states.shape == (r.length, STATE_DIM)
        assert r.actions.shape == (r.length,)
        assert r.rewards.shape == (r.length,)
        assert r.length == pytest.approx(4.0 / 0.02, abs=2)

    def test_rewards_in_range(self):
        r = collect_trajectory(mini_env(), "vegas")
        assert np.all(r.rewards >= 0.0)
        assert np.all(r.rewards <= 2.0)

    def test_actions_in_ratio_range(self):
        r = collect_trajectory(mini_env(), "cubic")
        assert np.all(r.actions >= 1 / 3 - 1e-9)
        assert np.all(r.actions <= 3 + 1e-9)

    def test_good_scheme_earns_reward(self):
        r = collect_trajectory(mini_env(duration=6.0), "vegas")
        assert r.rewards[len(r.rewards) // 2:].mean() > 0.3

    def test_multi_flow_has_competitor(self):
        r = collect_trajectory(mini_env(multi=True, duration=6.0), "cubic")
        assert len(r.competitor_stats) == 1
        assert r.competitor_stats[0].avg_throughput_bps > 0

    def test_multi_flow_uses_friendliness_reward(self):
        # a starving flow should score near zero on R2
        r = collect_trajectory(mini_env(multi=True, duration=8.0), "vegas")
        assert r.rewards.mean() < 0.9


class TestRunPolicy:
    def test_agent_controls_cwnd(self):
        env = mini_env()
        r = run_policy(env, ConstantAgent(ratio=1.0))
        assert r.scheme == "const"
        # ratio 1.0 forever: cwnd pinned at initial value
        assert np.allclose(r.actions, 1.0)
        assert r.stats.avg_throughput_bps > 0

    def test_growing_agent_fills_link(self):
        env = mini_env(duration=6.0)
        r = run_policy(env, ConstantAgent(ratio=1.05))
        assert r.stats.avg_throughput_bps > 0.5 * 12e6


def random_pool(rng, n_traj=5, length=30):
    trajs = []
    for i in range(n_traj):
        trajs.append(
            Trajectory(
                scheme=f"s{i % 2}",
                env_id=f"e{i}",
                multi_flow=bool(i % 2),
                states=rng.standard_normal((length, STATE_DIM)),
                actions=rng.uniform(0.5, 2.0, size=length),
                rewards=rng.uniform(0, 1, size=length),
            )
        )
    return PolicyPool(trajs)


class TestPolicyPool:
    def test_counts(self):
        pool = random_pool(np.random.default_rng(0))
        assert len(pool) == 5
        assert pool.n_transitions == 150

    def test_add_rollout(self):
        pool = PolicyPool()
        r = collect_trajectory(mini_env(duration=2.0), "newreno")
        pool.add_rollout(r)
        assert pool.schemes() == ["newreno"]

    def test_filter_schemes(self):
        pool = random_pool(np.random.default_rng(0))
        sub = pool.filter_schemes(["s0"])
        assert all(t.scheme == "s0" for t in sub.trajectories)
        assert len(sub) == 3

    def test_filter_env(self):
        pool = random_pool(np.random.default_rng(0))
        sub = pool.filter_env(lambda eid: eid == "e1")
        assert len(sub) == 1

    def test_sample_sequences_shapes(self):
        rng = np.random.default_rng(1)
        pool = random_pool(rng)
        batch = pool.sample_sequences(8, 6, rng)
        assert batch["states"].shape == (8, 6, STATE_DIM)
        assert batch["next_states"].shape == (8, 6, STATE_DIM)
        assert batch["actions"].shape == (8, 6)
        assert batch["rewards"].shape == (8, 6)

    def test_sample_sequences_are_consecutive(self):
        rng = np.random.default_rng(2)
        pool = random_pool(rng, n_traj=1)
        batch = pool.sample_sequences(4, 5, rng)
        np.testing.assert_allclose(
            batch["states"][:, 1:, :], batch["next_states"][:, :-1, :]
        )

    def test_sample_rejects_too_long(self):
        rng = np.random.default_rng(3)
        pool = random_pool(rng, length=5)
        with pytest.raises(ValueError):
            pool.sample_sequences(2, 10, rng)

    def test_sample_applies_normalizer(self):
        rng = np.random.default_rng(4)
        pool = random_pool(rng)
        batch = pool.sample_sequences(2, 3, rng, normalize=lambda s: s * 0.0)
        assert np.all(batch["states"] == 0.0)

    def test_save_load_roundtrip(self, tmp_path):
        pool = random_pool(np.random.default_rng(5))
        pool.save(tmp_path / "pool.npz")
        loaded = PolicyPool.load(tmp_path / "pool.npz")
        assert len(loaded) == len(pool)
        for a, b in zip(pool.trajectories, loaded.trajectories):
            assert a.scheme == b.scheme
            assert a.env_id == b.env_id
            assert a.multi_flow == b.multi_flow
            np.testing.assert_allclose(a.states, b.states)
            np.testing.assert_allclose(a.actions, b.actions)

    def test_trajectory_validates_lengths(self):
        with pytest.raises(ValueError):
            Trajectory(
                scheme="x", env_id="e", multi_flow=False,
                states=np.zeros((5, STATE_DIM)),
                actions=np.zeros(4),
                rewards=np.zeros(4),
            )

    def test_summary_mentions_schemes(self):
        pool = random_pool(np.random.default_rng(6))
        text = pool.summary()
        assert "s0" in text and "s1" in text

    def test_save_load_env_id_with_pipes(self, tmp_path):
        """Regression: '|' in env_id used to shear the meta encoding."""
        pool = random_pool(np.random.default_rng(8), n_traj=2)
        pool.trajectories[0].env_id = "step|24mbps|codel"
        pool.trajectories[1].env_id = "trailing\\"
        pool.save(tmp_path / "pool.npz")
        loaded = PolicyPool.load(tmp_path / "pool.npz")
        assert loaded.trajectories[0].env_id == "step|24mbps|codel"
        assert loaded.trajectories[1].env_id == "trailing\\"
        assert loaded.trajectories[0].multi_flow == pool.trajectories[0].multi_flow

    def test_drop_cache_releases_concat(self):
        rng = np.random.default_rng(9)
        pool = random_pool(rng)
        pool.sample_sequences(4, 5, rng)
        assert pool._concat is not None
        pool.drop_cache()
        assert pool._concat is None
        # sampling transparently rebuilds the cache
        batch = pool.sample_sequences(4, 5, rng)
        assert batch["states"].shape == (4, 5, STATE_DIM)

    @given(batch=st.integers(1, 16), seq=st.integers(1, 10))
    @settings(max_examples=10, deadline=None)
    def test_sampling_never_exceeds_bounds(self, batch, seq):
        rng = np.random.default_rng(7)
        pool = random_pool(rng, length=12)
        if seq >= 12:
            with pytest.raises(ValueError):
                pool.sample_sequences(batch, seq, rng)
        else:
            out = pool.sample_sequences(batch, seq, rng)
            assert np.all(np.isfinite(out["states"]))
