"""Fig. 11 — Distance CDF (handling distributional shift).

A fresh rollout in a step environment (24 -> 96 Mbps, as in the paper) is
compared transition-by-transition against the pool. Paper shape: Vegas
(a pool member re-run) sits near zero distance; learned policies (Sage,
BC) visit states the pool never contained.
"""

import numpy as np

from conftest import once

from repro.collector.environments import EnvConfig
from repro.collector.rollout import collect_trajectory, run_policy
from repro.evalx.similarity import distance_cdf


def test_fig11_distance_cdf(benchmark, policy_pool, sage_agent):
    env = EnvConfig(
        env_id="fig11-step", kind="step", bw_mbps=24.0, min_rtt=0.04,
        buffer_bdp=2.0, step_m=4.0, step_at=5.0, duration=10.0,
    )

    def run():
        vegas = collect_trajectory(env, "vegas")
        sage = run_policy(env, sage_agent)
        return {
            "vegas": distance_cdf(vegas, policy_pool),
            "sage": distance_cdf(sage, policy_pool),
        }

    cdfs = once(benchmark, run)
    print("\n=== Fig. 11: Distance percentiles ===")
    print(f"{'pct':>5} {'vegas':>8} {'sage':>8}")
    for pct in (25, 50, 65, 90):
        row = [np.percentile(cdfs[k], pct) for k in ("vegas", "sage")]
        print(f"{pct:>4}% {row[0]:8.4f} {row[1]:8.4f}")

    # Vegas re-runs resemble its pool trajectories far more than the
    # learned policy's rollouts do (the paper's 65th-percentile contrast).
    assert np.percentile(cdfs["vegas"], 65) <= np.percentile(cdfs["sage"], 65) + 0.05
    for cdf in cdfs.values():
        assert np.all(np.diff(cdf) >= 0)
