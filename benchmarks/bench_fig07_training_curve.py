"""Fig. 7 — Sage's winning rate over the training "days".

The paper records a checkpoint every ~24 h for 7 days and plots the model's
winning rate against the heuristic league in Set I and Set II; Sage crosses
the best heuristics' rates as training progresses. Here each checkpoint is
an evenly-spaced snapshot of the CRR run, evaluated on a reduced league.
"""

from conftest import bench_pool_schemes, bench_set1, bench_set2, once

from repro.evalx.leagues import Participant, run_league


def test_fig07_training_curve(benchmark, sage_run):
    set1 = bench_set1()[:2]
    set2 = bench_set2()[:2]
    schemes = [Participant.from_scheme(s) for s in bench_pool_schemes()[:4]]

    def curve():
        points = []
        for day in range(0, len(sage_run.checkpoints), 2):
            agent = sage_run.agent_at(day)
            agent.name = "sage"
            res = run_league(
                schemes + [Participant.from_agent(agent)], set1=set1, set2=set2
            )
            points.append((day, res.set1_rates["sage"], res.set2_rates["sage"]))
        return points

    points = once(benchmark, curve)
    print("\n=== Fig. 7: Sage winning rate vs training day ===")
    print(f"{'day':>4} {'Set I':>8} {'Set II':>8}")
    for day, r1, r2 in points:
        print(f"{day:>4} {r1 * 100:7.2f}% {r2 * 100:7.2f}%")
    assert len(points) >= 2
    assert all(0.0 <= r1 <= 1.0 and 0.0 <= r2 <= 1.0 for _, r1, r2 in points)
