"""Time-series experiments: behaviour samples, fairness, friendliness, AQMs.

Covers the paper's deep-dive figures:

- :func:`behavior_scenarios` (Fig. 17): sending rate / one-way delay / cwnd
  in the three sample scenarios (capacity doubles, capacity halves, vs a
  Cubic flow).
- :func:`fairness_experiment` (Figs. 18, 27): flows of one scheme joining a
  shared bottleneck every 25 s.
- :func:`friendliness_experiment` (Figs. 19, 28): one flow vs 3 or 7
  competing Cubic flows.
- :func:`aqm_experiment` (Fig. 23): throughput/delay under five AQMs.
- :func:`frontier_experiment` (Fig. 22): throughput-delay scatter of the
  pool schemes vs the learned policy in shallow/deep-buffer networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collector.environments import EnvConfig, build_network
from repro.evalx.leagues import Participant, run_participant
from repro.netsim.aqm import make_aqm
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.netsim.traces import FlatRate, StepRate
from repro.tcp.cc_base import CongestionControl
from repro.tcp.flow import Flow, FlowStats


# ---------------------------------------------------------------------------
# Fig. 17 — three sample scenarios
# ---------------------------------------------------------------------------

def behavior_scenarios(duration: float = 30.0) -> List[EnvConfig]:
    """The Fig. 17 scenarios: 24->48 Mbps, 48->24 Mbps, and vs-Cubic.

    All use 20 ms minimum RTT and a 300-packet (450 KB) bottleneck buffer,
    as the paper specifies.
    """
    buffer_bdp_24 = 450e3 / (24e6 * 0.020 / 8)  # 450 KB expressed in BDPs
    return [
        EnvConfig(
            env_id="fig17-step-up", kind="step", bw_mbps=24.0, min_rtt=0.020,
            buffer_bdp=buffer_bdp_24, step_m=2.0, step_at=duration / 2,
            duration=duration,
        ),
        EnvConfig(
            env_id="fig17-step-down", kind="step", bw_mbps=48.0, min_rtt=0.020,
            buffer_bdp=buffer_bdp_24 / 2, step_m=0.5, step_at=duration / 2,
            duration=duration,
        ),
        EnvConfig(
            env_id="fig17-vs-cubic", kind="flat", bw_mbps=24.0, min_rtt=0.020,
            buffer_bdp=buffer_bdp_24, n_competing_cubic=1, duration=duration,
        ),
    ]


# ---------------------------------------------------------------------------
# Multi-flow runners (fairness / friendliness)
# ---------------------------------------------------------------------------

@dataclass
class MultiFlowResult:
    """Per-flow time series from a shared-bottleneck experiment."""

    env: EnvConfig
    flow_stats: List[FlowStats] = field(default_factory=list)

    def jain_index(self, tail_fraction: float = 0.5) -> float:
        """Jain's fairness index over the tail of the experiment."""
        rates = []
        for s in self.flow_stats:
            series = np.asarray(s.throughput_series)
            if series.size == 0:
                continue
            tail = series[int(len(series) * (1 - tail_fraction)):]
            rates.append(float(tail.mean()))
        x = np.asarray(rates)
        if x.size == 0 or (x ** 2).sum() == 0:
            return 0.0
        return float(x.sum() ** 2 / (x.size * (x ** 2).sum()))


def _drive(
    loop: EventLoop, flows: List[Flow], duration: float, sample_dt: float = 0.1
) -> None:
    t = 0.0
    while t < duration - 1e-9:
        t += sample_dt
        loop.run_until(t)
        for f in flows:
            if t >= f.start_at:
                f.sample()
    for f in flows:
        f.stop()


def fairness_experiment(
    participant: Participant,
    n_flows: int = 4,
    join_every: float = 25.0,
    bw_mbps: float = 48.0,
    min_rtt: float = 0.040,
    duration: float = 120.0,
) -> MultiFlowResult:
    """Figs. 18/27: flows of the same scheme join every ``join_every`` s.

    Learned agents are wrapped per flow (each flow gets an independent agent
    instance state via reset-per-flow semantics of the rollout runner); for
    simplicity agents here control their flow through a per-flow GR loop.
    """
    env = EnvConfig(
        env_id=f"fairness-{participant.name}", kind="flat", bw_mbps=bw_mbps,
        min_rtt=min_rtt, buffer_bdp=2.0, duration=duration,
    )
    loop, network = build_network(env)
    flows = []
    controllers = []
    from repro.collector.gr_unit import GRUnit  # local to avoid cycle

    for i in range(n_flows):
        start = i * join_every
        if participant.scheme is not None:
            flow = Flow(network, i, participant.scheme, min_rtt=min_rtt, start_at=start)
        else:
            import copy

            agent = copy.deepcopy(participant.agent)
            agent.reset()
            flow = Flow(network, i, "newreno", min_rtt=min_rtt, start_at=start)
            flow.sender.external_cwnd_control = True
            controllers.append((agent, flow, GRUnit(flow.sender)))
        flows.append(flow)
        flow.start()

    # drive with a 20 ms agent tick interleaved with 100 ms sampling
    t = 0.0
    tick = 0.02
    next_sample = 0.1
    while t < duration - 1e-9:
        t += tick
        loop.run_until(t)
        for agent, flow, gr in controllers:
            if t >= flow.start_at:
                state, _ = gr.tick()
                ratio = float(np.clip(agent.act(state), 1 / 3, 3.0))
                flow.sender.set_cwnd(flow.sender.cwnd * ratio)
                gr._last_cwnd = max(flow.sender.cwnd, 1.0)
        if t >= next_sample - 1e-9:
            for f in flows:
                if t >= f.start_at:
                    f.sample()
            next_sample += 0.1
    for f in flows:
        f.stop()
    return MultiFlowResult(env=env, flow_stats=[f.stats() for f in flows])


def friendliness_experiment(
    participant: Participant,
    n_cubic: int = 3,
    bw_mbps: float = 48.0,
    min_rtt: float = 0.040,
    buffer_bdp: float = 1.0,
    duration: float = 60.0,
) -> MultiFlowResult:
    """Figs. 19/28: one flow of the participant vs ``n_cubic`` Cubic flows."""
    env = EnvConfig(
        env_id=f"friendliness-{participant.name}-x{n_cubic}", kind="flat",
        bw_mbps=bw_mbps, min_rtt=min_rtt, buffer_bdp=buffer_bdp,
        n_competing_cubic=n_cubic, duration=duration,
    )
    result = run_participant(participant, env)
    return MultiFlowResult(
        env=env, flow_stats=[result.stats] + result.competitor_stats
    )


# ---------------------------------------------------------------------------
# Fig. 23 — AQM robustness
# ---------------------------------------------------------------------------

AQM_NAMES = ("headdrop", "taildrop", "pie", "bode", "codel")


def aqm_experiment(
    participants: Sequence[Participant],
    aqms: Sequence[str] = AQM_NAMES,
    bw_mbps: float = 48.0,
    min_rtt: float = 0.020,
    buffer_bytes: int = 240_000,
    duration: float = 20.0,
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Fig. 23: {participant: {aqm: (throughput_bps, avg_owd_s)}}."""
    buffer_bdp = buffer_bytes / (bw_mbps * 1e6 * min_rtt / 8.0)
    out: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for p in participants:
        out[p.name] = {}
        for aqm in aqms:
            env = EnvConfig(
                env_id=f"aqm-{aqm}-{p.name}", kind="flat", bw_mbps=bw_mbps,
                min_rtt=min_rtt, buffer_bdp=buffer_bdp, duration=duration,
                aqm=aqm,
            )
            result = run_participant(p, env)
            out[p.name][aqm] = (
                result.stats.avg_throughput_bps,
                result.stats.avg_owd,
            )
    return out


# ---------------------------------------------------------------------------
# Fig. 22 — the performance frontier
# ---------------------------------------------------------------------------

def frontier_experiment(
    participants: Sequence[Participant],
    bw_mbps: float = 48.0,
    min_rtt: float = 0.040,
    duration: float = 20.0,
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Fig. 22: throughput-delay points in shallow and deep buffers.

    Returns ``{"shallow"|"deep": {participant: (thr_bps, owd_s)}}``.
    """
    out: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for label, buf in (("shallow", 0.5), ("deep", 8.0)):
        out[label] = {}
        for p in participants:
            env = EnvConfig(
                env_id=f"frontier-{label}-{p.name}", kind="flat",
                bw_mbps=bw_mbps, min_rtt=min_rtt, buffer_bdp=buf,
                duration=duration,
            )
            result = run_participant(p, env)
            out[label][p.name] = (
                result.stats.avg_throughput_bps,
                result.stats.avg_owd,
            )
    return out
