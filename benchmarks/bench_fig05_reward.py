"""Fig. 5 — the TCP-friendliness reward curve.

Regenerates R2(x) = exp(-8 (x-1)^2) over the fair-share ratio and checks
the depicted shape: peak of 1.0 exactly at the ideal fair share, symmetric
decay on both sides.
"""

import numpy as np

from repro.collector.rewards import friendliness_reward


def test_fig05_friendliness_reward_curve(benchmark):
    xs = np.linspace(0.0, 2.0, 41)
    fair = 24e6

    def curve():
        return np.array([friendliness_reward(x * fair, fair) for x in xs])

    r = benchmark(curve)
    print("\n=== Fig. 5: R2 vs x = r/fair_share ===")
    for x, v in zip(xs[::4], r[::4]):
        bar = "#" * int(v * 40)
        print(f"x={x:4.1f}  R2={v:6.4f}  {bar}")
    peak = int(np.argmax(r))
    assert xs[peak] == 1.0
    np.testing.assert_allclose(r, r[::-1], atol=1e-12)  # symmetry
    assert r[0] < 0.001 and r[-1] < 0.001
