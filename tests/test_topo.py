"""Tests for the graph topology engine (`repro.netsim.topo`).

Two pillars:

- **Facade fidelity** — the dumbbell `Network` is now a thin view over a
  two-node graph; `_LegacyNetwork` below is a verbatim copy of the
  pre-graph implementation, and the equivalence tests assert the rewrite
  reproduces its event streams *bitwise* (identical delivery/ACK
  timestamps, identical jitter draws, identical sender evolution).
- **Parking-lot physics** — multi-bottleneck closed-form checks: who gets
  which share, where the queue actually builds.
"""

import random as _random
from typing import Callable, Dict

import pytest

from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.network import Network, PathConfig
from repro.netsim.packet import MSS_BYTES, Packet
from repro.netsim.topo import (
    TOPOLOGY_CLASSES,
    Topology,
    describe_topology,
    dumbbell_topology,
    incast_topology,
    make_topology,
    parking_lot_topology,
    proxy_split_topology,
)
from repro.netsim.traces import FlatRate, StepRate
from repro.serve.harness import jain_index
from repro.tcp.flow import Flow


# ---------------------------------------------------------------------------
# the pre-graph dumbbell, copied verbatim: the bit-identity reference
# ---------------------------------------------------------------------------


class _LegacyNetwork:
    def __init__(self, loop, rate, aqm, seed=0):
        self.loop = loop
        self.link = Link(loop, rate, aqm, self._on_link_deliver)
        self._jitter_rng = _random.Random(seed)
        self._paths: Dict[int, PathConfig] = {}
        self._data_sinks: Dict[int, Callable[[Packet], None]] = {}
        self._ack_sinks: Dict[int, Callable[[Packet], None]] = {}
        self.dropped_by_flow: Dict[int, int] = {}
        self.delivered_by_flow: Dict[int, int] = {}

    def attach_flow(self, flow_id, path, data_sink, ack_sink):
        if flow_id in self._paths:
            raise ValueError(f"flow {flow_id} already attached")
        self._paths[flow_id] = path
        self._data_sinks[flow_id] = data_sink
        self._ack_sinks[flow_id] = ack_sink
        self.dropped_by_flow[flow_id] = 0
        self.delivered_by_flow[flow_id] = 0

    def send_data(self, pkt):
        if pkt.flow_id not in self._paths:
            raise KeyError(f"unknown flow {pkt.flow_id}")
        accepted = self.link.send(pkt)
        if not accepted:
            self.dropped_by_flow[pkt.flow_id] += 1

    def _on_link_deliver(self, pkt):
        path = self._paths[pkt.flow_id]
        sink = self._data_sinks[pkt.flow_id]
        self.delivered_by_flow[pkt.flow_id] += 1
        delay = path.fwd_delay
        if path.jitter > 0:
            delay += self._jitter_rng.random() * path.jitter
        self.loop.call_later(delay, lambda p=pkt: sink(p))

    def send_ack(self, ack):
        path = self._paths[ack.flow_id]
        sink = self._ack_sinks[ack.flow_id]
        self.loop.call_later(path.rev_delay, lambda p=ack: sink(p))

    def min_rtt(self, flow_id):
        return self._paths[flow_id].min_rtt

    @property
    def queue_delay(self):
        return self.link.queue_delay()


def _run_dumbbell(net_factory, rate_factory, duration=6.0):
    """Drive the same 3-flow scenario on any dumbbell-compatible network."""
    loop = EventLoop()
    net = net_factory(loop, rate_factory(), TailDrop(60_000))
    flows = [
        Flow(net, flow_id=0, scheme="cubic", min_rtt=0.04),
        Flow(net, flow_id=1, scheme="vegas", min_rtt=0.03),
        Flow(net, flow_id=2, scheme="newreno", min_rtt=0.08, start_at=1.0),
    ]
    trace = []
    for flow in flows:
        flow.start()
    t = 0.0
    while t < duration:
        t += 0.1
        loop.run_until(t)
        for flow in flows:
            flow.sample()
            trace.append(
                (flow.flow_id, flow.sender.cwnd, flow.sender.snd_una,
                 flow.sender.retransmits)
            )
    counters = (
        tuple(sorted(net.delivered_by_flow.items())),
        tuple(sorted(net.dropped_by_flow.items())),
    )
    return trace, counters, [f.stats() for f in flows]


class TestDumbbellBitIdentity:
    """The graph-backed facade must equal the legacy dumbbell bitwise."""

    @pytest.mark.parametrize("rate_factory", [
        lambda: FlatRate(24e6),
        lambda: StepRate(12e6, 2.0, t_switch=2.5),
    ], ids=["flat", "step"])
    def test_flows_evolve_identically(self, rate_factory):
        legacy = _run_dumbbell(_LegacyNetwork, rate_factory)
        graph = _run_dumbbell(Network, rate_factory)
        assert legacy[0] == graph[0]  # full cwnd/una/retx trace, exact
        assert legacy[1] == graph[1]  # delivered/dropped counters, exact
        for ls, gs in zip(legacy[2], graph[2]):
            assert ls.avg_throughput_bps == gs.avg_throughput_bps
            assert ls.loss_rate == gs.loss_rate

    def test_jitter_stream_identical(self):
        """Raw-API check: seeded jitter draws land at identical times."""

        def drive(net):
            events = []
            net.attach_flow(
                7, PathConfig(min_rtt=0.05, jitter=0.01),
                lambda p: events.append(("data", net.loop.now, p.seq)),
                lambda p: events.append(("ack", net.loop.now, p.seq)),
            )
            for i in range(32):
                net.loop.call_at(
                    i * 0.003,
                    lambda i=i: net.send_data(Packet(flow_id=7, seq=i)),
                )
                net.loop.call_at(
                    i * 0.004 + 0.001,
                    lambda i=i: net.send_ack(
                        Packet(flow_id=7, seq=i, size=40, is_ack=True)
                    ),
                )
            net.loop.run_until(2.0)
            return events

        legacy = drive(
            _LegacyNetwork(EventLoop(), FlatRate(10e6), TailDrop(30_000), seed=3)
        )
        graph = drive(
            Network(EventLoop(), FlatRate(10e6), TailDrop(30_000), seed=3)
        )
        assert legacy == graph

    def test_facade_exposes_graph(self):
        net = Network(EventLoop(), FlatRate(24e6), TailDrop(60_000))
        assert list(net.topology.nodes) == ["snd", "rcv"]
        assert len(net.topology.links) == 1
        assert net.link is net.topology.links[0].inner


# ---------------------------------------------------------------------------
# topology construction and routing
# ---------------------------------------------------------------------------


class TestTopologyBasics:
    def test_unknown_node_in_link_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(ValueError, match="unknown node"):
            topo.add_link("a", "b", FlatRate(1e6), TailDrop(10_000))

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(ValueError, match="already"):
            topo.add_node("a")

    def test_unattached_send_raises_value_error(self):
        topo = dumbbell_topology(FlatRate(1e6), TailDrop(10_000))
        with pytest.raises(ValueError, match="flow 9 is not attached"):
            topo.send_data(Packet(flow_id=9, seq=0))
        with pytest.raises(ValueError, match="flow 9 is not attached"):
            topo.send_ack(Packet(flow_id=9, seq=0, is_ack=True))

    def test_path_must_follow_links(self):
        topo = parking_lot_topology(n_segments=2)
        with pytest.raises(ValueError, match="no link"):
            topo.view(("r0", "r2"))  # no direct r0 -> r2 link

    def test_detached_flow_orphans_in_flight(self):
        topo = dumbbell_topology(FlatRate(10e6), TailDrop(30_000))
        got = []
        view = topo.view(("snd", "rcv"))
        view.attach_flow(
            1, PathConfig(min_rtt=0.05), lambda p: got.append(p.seq),
            lambda p: None,
        )
        for i in range(4):
            view.send_data(Packet(flow_id=1, seq=i))
        topo.loop.run_until(0.001)  # serialized, still propagating
        topo.detach_flow(1)
        topo.loop.run_until(1.0)
        assert got == []
        assert topo.orphaned >= 1

    def test_min_rtt_matches_path_config(self):
        """The per-flow access delay tops up graph propagation to min_rtt."""
        topo = parking_lot_topology(n_segments=3, min_rtt=0.04)
        flow = Flow(topo.view(("r0", "r1", "r2", "r3")), flow_id=5,
                    scheme="cubic", min_rtt=0.1)
        assert topo.min_rtt(5) == pytest.approx(0.1)

    def test_link_flap_drops_then_recovers(self):
        topo = dumbbell_topology(FlatRate(10e6), TailDrop(30_000))
        link = topo.links[0]
        link.schedule_flap(at=0.5, down_for=0.5)
        flow = Flow(topo.view(("snd", "rcv")), flow_id=1, scheme="cubic",
                    min_rtt=0.04)
        flow.start()
        topo.loop.run_until(3.0)
        flow.sample()
        assert link.drops_down > 0  # packets died in the down window
        assert link.up  # came back
        assert flow.sender.snd_una > 0  # and traffic resumed

    def test_random_loss_deterministic_per_seed(self):
        def run(seed):
            topo = Topology(seed=seed)
            topo.add_node("a")
            topo.add_node("b")
            topo.add_link("a", "b", FlatRate(10e6), TailDrop(30_000),
                          loss=0.05)
            flow = Flow(topo.view(("a", "b")), flow_id=1, scheme="newreno",
                        min_rtt=0.04)
            flow.start()
            topo.loop.run_until(3.0)
            return topo.links[0].drops_loss, flow.sender.snd_una

        assert run(1) == run(1)
        assert run(1)[0] > 0
        assert run(1) != run(2)


# ---------------------------------------------------------------------------
# factories
# ---------------------------------------------------------------------------


class TestFactories:
    def test_make_topology_dispatch(self):
        for cls in TOPOLOGY_CLASSES:
            assert make_topology(cls).links  # builds and has links
        assert make_topology("parking-lot")  # dash alias
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("star")

    def test_describe_mentions_every_link(self):
        out = describe_topology("proxy_split")
        assert "wan" in out and "lan" in out and "main path" in out

    def test_describe_pins_discipline_kwargs(self):
        out = describe_topology("incast", aqm="fq_codel")
        assert "FQCoDel" in out
        assert "n_queues=32" in out and "quantum=1514" in out

    def test_describe_pins_ecn_threshold(self):
        out = describe_topology("incast", ecn_threshold_bytes=30_000)
        assert "ecn_threshold_bytes=30000" in out

    def test_incast_rejects_threshold_on_loss_only_aqm(self):
        with pytest.raises(ValueError):
            incast_topology(n_senders=2, aqm="codel", ecn_threshold_bytes=30_000)

    def test_link_stats_surface(self):
        topo = incast_topology(n_senders=2, aqm="fq_codel")
        stats = topo.link_stats()
        assert len(stats) == len(topo.links)
        row = stats[0]
        for key in ("name", "aqm", "drops", "ecn_marks", "enqueues",
                    "queue_bytes", "stalls"):
            assert key in row
        assert row["ecn_marks"] == 0 and row["stalls"] == 0

    def test_incast_shape(self):
        topo = incast_topology(n_senders=4)
        assert sum(1 for n in topo.nodes.values() if n.kind == "host") == 5
        egress = topo.link_between("sw", "rcv")
        access = topo.link_between("s0", "sw")
        assert access.inner.rate.rate_at(0.0) > egress.inner.rate.rate_at(0.0)

    def test_proxy_split_generic_knobs(self):
        topo = make_topology("proxy_split", bw_mbps=10.0, min_rtt=0.1,
                             buffer_bytes=50_000)
        wan = topo.link_between("snd", "proxy")
        lan = topo.link_between("proxy", "rcv")
        assert wan.inner.rate.rate_at(0.0) == pytest.approx(10e6)
        assert lan.inner.rate.rate_at(0.0) == pytest.approx(40e6)
        assert wan.prop_delay + lan.prop_delay == pytest.approx(0.05)


# ---------------------------------------------------------------------------
# parking-lot physics: closed-form shares and queue placement
# ---------------------------------------------------------------------------


def _run_parking_lot(duration=20.0):
    """One end-to-end cubic vs one cross cubic per segment, (48, 12, 48)."""
    topo = parking_lot_topology(
        n_segments=3, bw_per_segment=(48.0, 12.0, 48.0), min_rtt=0.04,
        buffer_bytes=120_000,
    )
    main = Flow(topo.view(("r0", "r1", "r2", "r3")), flow_id=0,
                scheme="cubic", min_rtt=0.04)
    crosses = [
        Flow(topo.view((f"r{i}", f"r{i+1}")), flow_id=10 + i,
             scheme="cubic", min_rtt=0.04)
        for i in range(3)
    ]
    flows = [main] + crosses
    for flow in flows:
        flow.start()
    queue_samples = {i: [] for i in range(3)}
    t = 0.0
    while t < duration:
        t += 0.1
        topo.loop.run_until(t)
        for flow in flows:
            flow.sample()
        for i, link in enumerate(topo.links):
            queue_samples[i].append(link.queue_delay())
    return topo, [f.stats() for f in flows], queue_samples


@pytest.fixture(scope="module")
def parking_lot_run():
    return _run_parking_lot()


class TestParkingLotFairness:
    """Closed-form: seg1 (12 Mbps) is the only shared bottleneck for the
    end-to-end flow, so main and the middle cross each get ~6 Mbps while
    the outer crosses take the rest of their 48 Mbps segments (~42)."""

    def test_middle_bottleneck_split(self, parking_lot_run):
        _, stats, _ = parking_lot_run
        main, mid_cross = stats[0], stats[2]
        for s in (main, mid_cross):
            assert 3.0e6 < s.avg_throughput_bps < 9.0e6
        # together they fill the 12 Mbps segment
        total = main.avg_throughput_bps + mid_cross.avg_throughput_bps
        assert total > 0.85 * 12e6

    def test_outer_crosses_take_residual(self, parking_lot_run):
        _, stats, _ = parking_lot_run
        for s in (stats[1], stats[3]):
            assert s.avg_throughput_bps > 30e6

    def test_jain_matches_closed_form(self, parking_lot_run):
        """Ideal shares (6, 42, 6, 42) Mbps give Jain = 96^2/(4*3600) = 0.64."""
        _, stats, _ = parking_lot_run
        jain = jain_index([s.avg_throughput_bps for s in stats])
        assert 0.5 < jain < 0.8

    def test_queue_delay_concentrates_at_the_bottleneck(self, parking_lot_run):
        """Cross cubics keep bytes queued everywhere, but queueing *delay*
        (bytes/rate) concentrates on the slow middle segment: the same
        120 KB standing queue costs 80 ms at 12 Mbps vs 20 ms at 48."""
        _, _, queues = parking_lot_run
        mean = {i: sum(q) / len(q) for i, q in queues.items()}
        assert mean[1] > 3 * mean[0]
        assert mean[1] > 3 * mean[2]

    def test_per_segment_drops_accounted(self, parking_lot_run):
        topo, _, _ = parking_lot_run
        assert topo.links[1].drops > 0  # cubic probes past the 12 Mbps pipe


class TestIncastBehaviour:
    def test_synchronized_senders_overrun_shallow_egress(self):
        topo = incast_topology(n_senders=8, bw_mbps=48.0, min_rtt=0.01,
                               buffer_bytes=45_000)
        flows = [
            Flow(topo.view((f"s{i}", "sw", "rcv")), flow_id=i,
                 scheme="cubic", min_rtt=0.01)
            for i in range(8)
        ]
        for flow in flows:
            flow.start()
        topo.loop.run_until(5.0)
        for flow in flows:
            flow.sample()
        egress = topo.link_between("sw", "rcv")
        assert egress.drops > 0
        total = sum(f.stats().avg_throughput_bps for f in flows)
        assert total > 0.6 * 48e6  # the fan-in still fills the egress
