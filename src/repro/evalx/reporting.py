"""Result reporting: persist experiment outputs as CSV / Markdown.

The benches print their rows; this module lets scripts also persist them in
machine-readable form (the files EXPERIMENTS.md quotes were assembled from
these writers).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Sequence


def save_csv(path, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Write rows to ``path`` as CSV with the given header."""
    header = list(header)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        for row in rows:
            row = list(row)
            if len(row) != len(header):
                raise ValueError(
                    f"row width {len(row)} != header width {len(header)}: {row}"
                )
            writer.writerow(row)


def load_csv(path) -> List[Dict[str, str]]:
    """Read a CSV written by :func:`save_csv` into dict rows."""
    with Path(path).open() as f:
        return list(csv.DictReader(f))


def markdown_table(header: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as a GitHub-flavored Markdown table."""
    header = list(header)
    lines = [
        "| " + " | ".join(str(h) for h in header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in rows:
        row = list(row)
        if len(row) != len(header):
            raise ValueError(
                f"row width {len(row)} != header width {len(header)}: {row}"
            )
        lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def league_rows(result) -> List[List]:
    """Flatten a :class:`~repro.evalx.leagues.LeagueResult` into rows
    ``[participant, set1_rate, set2_rate]`` sorted by combined rate."""
    names = sorted(
        set(result.set1_rates) | set(result.set2_rates),
        key=lambda n: -(result.set1_rates.get(n, 0.0) + result.set2_rates.get(n, 0.0)),
    )
    return [
        [n, result.set1_rates.get(n, 0.0), result.set2_rates.get(n, 0.0)]
        for n in names
    ]


def internet_rows(report) -> List[List]:
    """Flatten an :class:`~repro.evalx.internet.InternetReport` into rows
    ``[participant, norm_throughput, norm_delay, norm_delay_p95]``."""
    return [
        [
            name,
            report.norm_throughput[name],
            report.norm_delay[name],
            report.norm_delay_p95[name],
        ]
        for name in sorted(report.norm_throughput)
    ]
