"""Serving-throughput benchmark core (shared by CLI and benchmarks/).

Measures flows/sec of the Execution block two ways over the same synthetic
state stream:

- **batch=1**: N independent :class:`SageAgent` instances, one forward per
  flow per tick — the pre-serving deployment model;
- **batched**: one :class:`PolicyServer` with N connected flows, one
  ``(N, 69)`` forward per tick.

Both run the policy in deterministic mode so the decision streams are
directly comparable (batched vs serial agree to float rounding; the bitwise
batch-composition guarantee is enforced by ``tests/test_serve.py``).
Optionally also runs the end-to-end multi-flow network harness.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.collector.gr_unit import STATE_DIM
from repro.core.agent import SageAgent
from repro.core.networks import NetworkConfig, SagePolicy
from repro.serve.engine import PolicyServer, ServeConfig
from repro.serve.harness import MultiFlowConfig, run_served_flows


def run_serve_bench(
    flows: int = 64,
    ticks: int = 200,
    seed: int = 0,
    net_config: Optional[NetworkConfig] = None,
    with_harness: bool = True,
    harness_duration: float = 3.0,
) -> dict:
    """Benchmark batched serving against N batch=1 agents; returns a report."""
    cfg = net_config if net_config is not None else NetworkConfig()
    rng = np.random.default_rng(seed)
    policy = SagePolicy(cfg, rng)
    states = rng.standard_normal((ticks, flows, STATE_DIM))

    # -- batch=1 baseline: N independent SageAgents ---------------------
    agents = [
        SageAgent(policy, deterministic=True, seed=seed + i) for i in range(flows)
    ]
    for agent in agents:
        agent.reset()
    serial_ratios = np.empty((ticks, flows))
    t0 = time.perf_counter()
    for t in range(ticks):
        for i, agent in enumerate(agents):
            serial_ratios[t, i] = agent.act(states[t, i])
    serial_s = time.perf_counter() - t0

    # -- batched: one PolicyServer, one (N, 69) forward per tick ---------
    server = PolicyServer(
        policy, ServeConfig(deterministic=True, tick_budget=None, seed=seed)
    )
    for i in range(flows):
        server.connect(i)
    batched_ratios = np.empty((ticks, flows))
    t0 = time.perf_counter()
    for t in range(ticks):
        for i in range(flows):
            server.submit(i, states[t, i])
        decisions = server.tick()
        for i in range(flows):
            batched_ratios[t, i] = decisions[i].ratio
    batched_s = time.perf_counter() - t0

    flow_ticks = flows * ticks
    max_diff = float(np.abs(serial_ratios - batched_ratios).max())
    snapshot = server.metrics.snapshot()
    result = {
        "flows": flows,
        "ticks": ticks,
        "gru_dim": cfg.gru_dim,
        "serial": {
            "elapsed_s": round(serial_s, 4),
            "flows_per_s": round(flow_ticks / serial_s, 1),
            "tick_ms": round(serial_s / ticks * 1e3, 4),
        },
        "batched": {
            "elapsed_s": round(batched_s, 4),
            "flows_per_s": round(flow_ticks / batched_s, 1),
            "tick_ms": round(batched_s / ticks * 1e3, 4),
            "latency_p50_ms": snapshot["latency_p50_ms"],
            "latency_p99_ms": snapshot["latency_p99_ms"],
            "batch_hist": snapshot["batch_hist"],
        },
        "speedup": round(serial_s / batched_s, 3),
        "serial_batched_max_abs_diff": max_diff,
        "serial_batched_allclose": bool(
            np.allclose(serial_ratios, batched_ratios, rtol=1e-7, atol=1e-9)
        ),
    }

    if with_harness:
        hcfg = MultiFlowConfig(
            n_flows=min(flows, 8),
            bw_mbps=48.0,
            min_rtt=0.04,
            buffer_bdp=2.0,
            duration=harness_duration,
        )
        hres = run_served_flows(policy, hcfg)
        result["harness"] = {
            "n_flows": hcfg.n_flows,
            "duration_s": hcfg.duration,
            "aggregate_throughput_mbps": round(
                hres.aggregate_throughput_bps / 1e6, 3
            ),
            "jain_fairness": round(hres.jain_fairness, 4),
            "fallback_rate": hres.metrics["fallback_rate"],
            "latency_p99_ms": hres.metrics["latency_p99_ms"],
        }
    return result


def format_report(result: dict) -> str:
    lines = [
        f"=== serve-bench: {result['flows']} flows x {result['ticks']} ticks "
        f"(gru_dim={result['gru_dim']}) ===",
        f"{'mode':>10} {'elapsed_s':>10} {'flows/s':>10} {'tick_ms':>9}",
    ]
    for mode in ("serial", "batched"):
        row = result[mode]
        lines.append(
            f"{mode:>10} {row['elapsed_s']:>10.3f} "
            f"{row['flows_per_s']:>10.0f} {row['tick_ms']:>9.3f}"
        )
    lines.append(
        f"speedup: {result['speedup']:.2f}x   "
        f"batched p50/p99: {result['batched']['latency_p50_ms']:.3f}/"
        f"{result['batched']['latency_p99_ms']:.3f} ms   "
        f"outputs allclose: {result['serial_batched_allclose']}"
    )
    if "harness" in result:
        h = result["harness"]
        lines.append(
            f"harness ({h['n_flows']} flows, {h['duration_s']:g}s): "
            f"{h['aggregate_throughput_mbps']:.1f} Mbps aggregate, "
            f"Jain {h['jain_fairness']:.3f}, "
            f"fallback rate {h['fallback_rate']:.3f}"
        )
    return "\n".join(lines)


def write_report(result: dict, path) -> None:
    Path(path).write_text(json.dumps(result, indent=1) + "\n")
