"""Behavioural-shape tests: the time-domain signatures of the control laws.

These go beyond hook-level unit tests: they run each scheme on a real
bottleneck and assert the *waveform* its control law is known for (AIMD
sawtooth, Cubic's plateau around W_max, BBR2's probe cycling, Vegas's flat
equilibrium).
"""

import numpy as np
import pytest

from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.netsim.traces import FlatRate
from repro.tcp.flow import Flow


def run_and_trace(scheme, bw=24e6, rtt=0.04, buf_bdp=1.0, dur=20.0, dt=0.05):
    loop = EventLoop()
    net = Network(loop, FlatRate(bw), TailDrop(int(buf_bdp * bw * rtt / 8)))
    flow = Flow(net, 0, scheme, min_rtt=rtt)
    flow.start()
    t = 0.0
    while t < dur:
        t += dt
        loop.run_until(t)
        flow.sample()
    flow.stop()
    return flow.stats()


def _tail(series, frac=0.6):
    arr = np.asarray(series)
    return arr[int(len(arr) * (1 - frac)):]


class TestSawtooth:
    def test_newreno_cwnd_oscillates_around_operating_point(self):
        s = run_and_trace("newreno")
        cwnd = _tail(s.cwnd_series)
        # sawtooth: repeated drops of roughly one half
        drops = np.sum(np.diff(cwnd) < -0.2 * cwnd[:-1])
        assert drops >= 2
        # but the mean stays near the BDP+buffer operating point (80-160 pkts)
        assert 60 < cwnd.mean() < 220

    def test_newreno_additive_increase_between_drops(self):
        s = run_and_trace("newreno")
        cwnd = _tail(s.cwnd_series)
        diffs = np.diff(cwnd)
        growth = diffs[diffs > 0]
        # AI: about +1 packet per RTT = +1.25 packets per 50 ms sample
        assert 0.1 < np.median(growth) < 5.0


class TestCubicShape:
    def test_growth_slows_near_wmax_then_accelerates(self):
        s = run_and_trace("cubic", dur=25.0)
        cwnd = np.asarray(s.cwnd_series)
        # find a backoff and examine the epoch that follows
        drops = np.where(np.diff(cwnd) < -0.15 * cwnd[:-1])[0]
        drops = [d for d in drops if d > len(cwnd) * 0.3]
        assert drops, "cubic never backed off"
        d = drops[0]
        epoch = cwnd[d + 1 : d + 1 + 60]
        if len(epoch) >= 30:
            early_slope = np.mean(np.diff(epoch[:10]))
            mid_slope = np.mean(np.diff(epoch[10:25]))
            # concave first: growth decelerates approaching W_max
            assert mid_slope <= early_slope + 1.0


class TestVegasEquilibrium:
    def test_cwnd_flat_at_equilibrium(self):
        s = run_and_trace("vegas")
        cwnd = _tail(s.cwnd_series, 0.5)
        # vegas parks cwnd within a couple packets of BDP + alpha..beta
        assert cwnd.std() < 5.0
        bdp = 24e6 * 0.04 / 8 / 1500
        assert bdp <= cwnd.mean() <= bdp + 8

    def test_rtt_stays_near_propagation(self):
        s = run_and_trace("vegas", buf_bdp=8.0)
        rtts = _tail(s.rtt_series, 0.5)
        assert np.mean(rtts) < 0.04 * 1.3


class TestBbr2Cycle:
    def test_startup_then_steady(self):
        s = run_and_trace("bbr2", dur=15.0)
        thr = np.asarray(s.throughput_series)
        # startup reaches near-capacity within a couple of seconds
        assert thr[40:].mean() > 0.8 * 24e6

    def test_window_bounded_near_bdp(self):
        # BBR2 sizes inflight to cwnd_gain x BDP instead of filling the
        # buffer (no PROBE_RTT dips appear here because an empty queue keeps
        # refreshing the min-RTT estimate, as in the kernel).
        s = run_and_trace("bbr2", dur=25.0, buf_bdp=8.0)
        cwnd = np.asarray(s.cwnd_series)
        bdp = 24e6 * 0.04 / 8 / 1500  # 80 packets
        assert cwnd[int(len(cwnd) * 0.4):].max() <= 2.6 * bdp
        # and delay stays near propagation despite the deep buffer
        assert np.mean(s.rtt_series[len(s.rtt_series) // 2:]) < 0.04 * 1.4


class TestScavengers:
    @pytest.mark.parametrize("scheme", ["ledbat", "lp"])
    def test_solo_scavenger_still_uses_link(self, scheme):
        s = run_and_trace(scheme, dur=10.0)
        assert s.avg_throughput_bps > 0.3 * 24e6

    def test_ledbat_keeps_its_delay_target(self):
        s = run_and_trace("ledbat", buf_bdp=8.0, dur=15.0)
        qd = np.asarray(_tail(s.rtt_series, 0.5)) - 0.04
        # standing queue hugs the 100 ms LEDBAT target, not the 320 ms buffer
        assert 0.0 <= np.mean(qd) < 0.18


class TestHighBdpSchemes:
    @pytest.mark.parametrize("scheme", ["highspeed", "htcp", "bic", "scalable"])
    def test_fill_large_bdp_quickly(self, scheme):
        # 96 Mbps x 80 ms = 640 packets of BDP: aggressive schemes must fill
        # it within the run while Reno would still be climbing
        s = run_and_trace(scheme, bw=96e6, rtt=0.08, buf_bdp=1.0, dur=20.0)
        thr = np.asarray(s.throughput_series)
        assert thr[-80:].mean() > 0.7 * 96e6
