"""Command-line interface: the three Sage phases plus the league runner.

Usage::

    python -m repro collect --scale mini --out pool.npz [--store shards/]
    python -m repro collect --topology parking_lot --out pool.npz
    python -m repro train   --pool pool.npz|shards/ --steps 300 --out sage.npz
    python -m repro league  --schemes cubic,vegas,bbr2 [--agent sage.npz --serve]
    python -m repro deploy  --agent sage.npz --bw 24 --rtt 0.04
    python -m repro serve-bench --flows 64 [--tiers] [--workload]
    python -m repro topo describe parking_lot --segments 3
    python -m repro topo matrix --schemes cubic,vegas --out matrix.json
    python -m repro aqm matrix --schemes cubic,vegas --out aqm_matrix.json
    python -m repro aqm trace --shards 2 --out-dir traces/
    python -m repro aqm learn traces/queue_trace_*.npz --out ecn_model.npz
    python -m repro distill fit  --agent sage.npz --pool pool.npz --out tree.npz
    python -m repro distill eval --model tree.npz --agent sage.npz --pool pool.npz
    python -m repro train-bench --pool pool.npz
    python -m repro pipeline run --workdir run/ [--fault-plan plan.json]
    python -m repro pipeline resume --workdir run/
    python -m repro pipeline status --workdir run/ [--json]
    python -m repro chaos plan --seed 7 --faults collector.crash,train.nan \
        --out plan.json
    python -m repro soak --workdir soak/ --duration 60 --seed 0 \
        --out BENCH_soak.json
    python -m repro pool pack pool.npz shards/     # legacy .npz -> shards
    python -m repro pool merge w0/ w1/ -o shards/  # per-worker dirs -> one
    python -m repro pool verify shards/            # audit + quarantine
    python -m repro pool stats shards/             # inventory + checksums

Each subcommand wraps the same public API the examples use; nothing here is
load-bearing beyond argument parsing.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np


def _cmd_collect(args) -> int:
    import dataclasses

    from repro.collector.environments import (
        aqm_environments,
        topology_class_environments,
        training_environments,
    )
    from repro.core.training import collect_pool

    schemes = args.schemes.split(",") if args.schemes else None
    store = args.store or None
    aqms = [a.strip() for a in args.aqm.split(",") if a.strip()]
    if args.topology:
        envs = topology_class_environments(args.topology)
        if aqms:
            # rebuild the same scenario grid under the requested discipline(s)
            envs = [
                dataclasses.replace(
                    env, env_id=f"{env.env_id}-{aqm.partition('@')[0]}", aqm=aqm
                )
                for aqm in aqms
                for env in envs
            ]
    elif aqms:
        envs = [env for aqm in aqms for env in aqm_environments(aqm)]
    else:
        envs = training_environments(args.scale)
    pool = collect_pool(
        envs,
        schemes=schemes,
        progress=(lambda msg: print(msg)) if args.verbose else None,
        workers=args.workers,
        store=store,
        shard_bytes=args.shard_mb * (1 << 20) if store else None,
        max_task_seconds=args.task_timeout,
    )
    print(pool.summary())
    if store:
        print(f"streamed pool into sharded store {store}")
    else:
        pool.save(args.out)
        print(f"saved pool to {args.out}")
    return 0


def _cmd_train(args) -> int:
    from repro.core.crr import CRRConfig
    from repro.core.networks import NetworkConfig
    from repro.core.training import train_sage_on_pool
    from repro.datastore import open_pool

    pool = open_pool(args.pool)
    net = NetworkConfig(
        enc_dim=args.enc_dim, gru_dim=args.gru_dim,
        n_components=args.components, n_atoms=args.atoms,
    )
    run = train_sage_on_pool(
        pool, n_steps=args.steps, n_checkpoints=args.checkpoints,
        net_config=net, crr_config=CRRConfig(), seed=args.seed,
        log_every=args.log_every, engine=args.engine,
        prefetch=args.prefetch, sampler_workers=args.workers,
        grad_workers=args.grad_workers,
    )
    run.agent.save(args.out)
    print(f"trained {run.trainer.steps_done} steps; saved policy to {args.out}")
    return 0


def _load_agent(path: str, enc_dim: int, gru_dim: int, components: int, atoms: int):
    from repro.core.agent import SageAgent
    from repro.core.networks import NetworkConfig

    cfg = NetworkConfig(
        enc_dim=enc_dim, gru_dim=gru_dim, n_components=components, n_atoms=atoms
    )
    return SageAgent.load(path, net_config=cfg)


def _cmd_league(args) -> int:
    from repro.evalx.leagues import Participant, run_league

    participants = [
        Participant.from_scheme(s) for s in args.schemes.split(",") if s
    ]
    if args.agent:
        agent = _load_agent(
            args.agent, args.enc_dim, args.gru_dim, args.components, args.atoms
        )
        if args.serve:
            participants.append(Participant.from_served(agent.policy))
        else:
            participants.append(Participant.from_agent(agent))
    result = run_league(participants, workers=args.workers)
    print(result.format_table())
    return 0


def _cmd_deploy(args) -> int:
    from repro.collector.environments import EnvConfig
    from repro.collector.rollout import run_policy

    agent = _load_agent(
        args.agent, args.enc_dim, args.gru_dim, args.components, args.atoms
    )
    env = EnvConfig(
        env_id="cli-deploy", kind="flat", bw_mbps=args.bw, min_rtt=args.rtt,
        buffer_bdp=args.buffer, n_competing_cubic=args.cubics,
        duration=args.duration,
    )
    result = run_policy(env, agent)
    s = result.stats
    print(
        f"throughput={s.avg_throughput_bps / 1e6:.2f} Mbps  "
        f"owd={s.avg_owd * 1e3:.1f} ms  loss={s.loss_rate:.4f}  "
        f"mean-reward={float(np.mean(result.rewards)):.3f}"
    )
    return 0


def _cmd_train_bench(args) -> int:
    from repro.core.crr import CRRConfig
    from repro.core.networks import NetworkConfig
    from repro.datastore import open_pool
    from repro.train.bench import format_report, run_train_bench, write_report

    pool = open_pool(args.pool) if args.pool else None
    net = NetworkConfig(
        enc_dim=args.enc_dim, gru_dim=args.gru_dim,
        n_components=args.components, n_atoms=args.atoms,
    )
    schemes = args.schemes.split(",") if args.schemes else None
    scaling = (
        tuple(int(n) for n in args.scaling_workers.split(","))
        if args.scaling_workers else None
    )
    result = run_train_bench(
        pool=pool, steps=args.steps, eq_steps=args.eq_steps, seed=args.seed,
        net_config=net, crr_config=CRRConfig(), prefetch=args.prefetch,
        sampler_workers=args.workers, schemes=schemes,
        collect_workers=args.collect_workers,
        scaling_workers=scaling, scaling_steps=args.scaling_steps,
    )
    print(format_report(result))
    write_report(result, args.out)
    print(f"wrote {args.out}")
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.core.networks import NetworkConfig
    from repro.serve.bench import format_report, run_serve_bench, write_report
    from repro.serve.harness import WorkloadServeConfig

    net = NetworkConfig(
        enc_dim=args.enc_dim, gru_dim=args.gru_dim,
        n_components=args.components, n_atoms=args.atoms,
    )
    tiers_kwargs = {}
    if args.tiers:
        tiers_kwargs = {
            "target_coverage": args.coverage,
            "refresh_every": args.refresh,
            "with_league": not args.no_league,
            "league_duration": args.league_duration,
        }
    workload_config = None
    if args.workload:
        workload_config = WorkloadServeConfig(
            topology=args.topology,
            arrival_rate=args.arrival_rate,
            duration=args.workload_duration,
            mean_size_bytes=args.mean_size_kb * 1000.0,
            seed=args.seed,
        )
    result = run_serve_bench(
        flows=args.flows, ticks=args.ticks, seed=args.seed, net_config=net,
        with_harness=not args.no_harness,
        tiers=args.tiers, tiers_kwargs=tiers_kwargs,
        workload=args.workload, workload_config=workload_config,
    )
    print(format_report(result))
    write_report(result, args.out)
    print(f"wrote {args.out}")
    return 0


def _cmd_distill_fit(args) -> int:
    from repro.datastore import open_pool
    from repro.distill import DistillConfig, fit_distilled

    agent = _load_agent(
        args.agent, args.enc_dim, args.gru_dim, args.components, args.atoms
    )
    pool = open_pool(args.pool)
    cfg = DistillConfig(
        max_depth=args.max_depth,
        max_leaves=args.max_leaves,
        min_leaf=args.min_leaf,
        target_coverage=args.coverage,
        refresh_every=args.refresh,
        max_samples=args.max_samples or None,
    )
    distilled, report = fit_distilled(agent.policy, pool, cfg)
    distilled.save(args.out)
    for key, val in report.items():
        print(f"{key:>22}: {val}")
    if args.rules:
        print("--- rules (first", args.rules, ") ---")
        for rule in distilled.rules(max_rules=args.rules):
            print(" ", rule)
    print(f"saved distilled controller to {args.out}")
    return 0


def _cmd_distill_eval(args) -> int:
    from repro.datastore import open_pool
    from repro.distill import DistilledPolicy, evaluate_distilled

    agent = _load_agent(
        args.agent, args.enc_dim, args.gru_dim, args.components, args.atoms
    )
    distilled = DistilledPolicy.load(args.model)
    pool = open_pool(args.pool)
    report = evaluate_distilled(
        distilled, agent.policy, pool, max_samples=args.max_samples or None
    )
    for key, val in report.items():
        print(f"{key:>26}: {val}")
    return 0


def _cmd_pool_pack(args) -> int:
    from repro.datastore import pack_pool, store_stats

    pool = pack_pool(args.source, args.out, shard_bytes=args.shard_mb << 20)
    print(store_stats(args.out))
    print(f"packed {args.source} -> {args.out} "
          f"({len(pool.manifest.shards)} shards)")
    return 0


def _cmd_pool_merge(args) -> int:
    from repro.datastore import merge_stores, store_stats

    pool = merge_stores(args.sources, args.out, shard_bytes=args.shard_mb << 20)
    print(store_stats(args.out))
    print(f"merged {len(args.sources)} source(s) -> {args.out} "
          f"({len(pool)} trajectories)")
    return 0


def _cmd_pool_verify(args) -> int:
    from repro.datastore import verify

    report = verify(args.store, quarantine=not args.no_quarantine)
    print(report.format())
    if not report.clean and args.strict:
        return 1
    return 0


def _cmd_pool_stats(args) -> int:
    from repro.datastore import store_stats

    print(store_stats(args.store))
    return 0


def _pipeline_config(args):
    from repro.pipeline import PipelineConfig

    return PipelineConfig(
        workdir=args.workdir,
        scale=args.scale,
        schemes=tuple(args.schemes.split(",")) if args.schemes else None,
        workers=args.workers,
        base_seed=args.seed,
        max_task_seconds=args.task_timeout,
        n_steps=args.steps,
        train_seed=args.seed,
        grad_workers=args.grad_workers,
        eval_duration=args.eval_duration,
        fault_plan=args.fault_plan or None,
    )


def _cmd_pipeline_run(args) -> int:
    from repro.pipeline import PipelineConfig, PipelineError, build_supervisor
    from repro.pipeline.state import PipelineState

    if args.resume:
        # rebuild the exact original run from the persisted journal
        cfg = PipelineConfig.from_json(
            PipelineState.load(
                PipelineConfig(workdir=args.workdir).state_path
            ).config
        )
    else:
        cfg = _pipeline_config(args)
    supervisor = build_supervisor(cfg)
    try:
        state = supervisor.run(resume=args.resume, config=cfg.to_json())
    except PipelineError as exc:
        print(f"pipeline failed: {exc}", file=sys.stderr)
        print(f"state journal: {cfg.state_path}", file=sys.stderr)
        return 1
    print(state.format_status())
    return 0


def _cmd_pipeline_status(args) -> int:
    from repro.pipeline import PipelineConfig
    from repro.pipeline.state import PipelineState

    state_path = PipelineConfig(workdir=args.workdir).state_path
    try:
        state = PipelineState.load(state_path)
    except (FileNotFoundError, ValueError) as exc:
        print(f"no readable pipeline state at {state_path}: {exc}",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(state.status_json(), indent=1))
    else:
        print(state.format_status())
    return 0


def _cmd_soak(args) -> int:
    from repro.soak import SoakConfig, run_soak
    from repro.soak.report import format_soak_report

    rates = None
    if args.rates:
        from repro.chaos import SITES

        rates = {}
        for entry in args.rates.split(","):
            site, _, rate = entry.partition("=")
            if site not in SITES:
                print(f"unknown fault site {site!r}; "
                      f"valid: {', '.join(sorted(SITES))}", file=sys.stderr)
                return 1
            rates[site] = float(rate) if rate else 0.0
    cfg = SoakConfig(
        workdir=args.workdir,
        duration_s=args.duration,
        min_rounds=args.min_rounds,
        max_rounds=args.max_rounds,
        seed=args.seed,
        phases=tuple(args.phases.split(",")),
        rates=rates,
        rate_scale=args.rate_scale,
        scale=args.scale,
        schemes=tuple(args.schemes.split(",")),
        steps_per_round=args.steps_per_round,
        serve_ticks=args.serve_ticks,
        serve_flows=args.serve_flows,
        workload_duration=args.workload_duration,
        arrival_rate=args.arrival_rate,
        slo_mttr_p50_s=args.slo_mttr_p50,
        slo_mttr_p99_s=args.slo_mttr_p99,
        slo_min_sites=args.min_sites,
        check_identity=not args.no_identity,
    )
    report = run_soak(cfg, out_path=args.out or None)
    print(format_soak_report(report))
    if args.out:
        print(f"wrote {args.out}")
    return 0 if report["passed"] else 1


def _cmd_chaos_plan(args) -> int:
    from repro.chaos import SITES, FaultPlan

    counts = {}
    for entry in (args.faults.split(",") if args.faults else sorted(SITES)):
        site, _, n = entry.partition("=")
        if site not in SITES:
            print(f"unknown fault site {site!r}; "
                  f"valid: {', '.join(sorted(SITES))}", file=sys.stderr)
            return 1
        counts[site] = counts.get(site, 0) + (int(n) if n else 1)
    universes = {}
    for entry in args.universes.split(",") if args.universes else ():
        group, _, n = entry.partition("=")
        universes[group] = int(n)
    plan = FaultPlan.generate(
        seed=args.seed, counts=counts, universes=universes or None
    )
    print(plan.describe())
    if args.out:
        plan.save(args.out)
        print(f"saved plan to {args.out}")
    return 0


def _cmd_topo_describe(args) -> int:
    from repro.netsim.topo import describe_topology

    kwargs = {}
    if args.bw is not None:
        kwargs["bw_mbps"] = args.bw
    if args.rtt is not None:
        kwargs["min_rtt"] = args.rtt
    if args.buffer_kb is not None:
        kwargs["buffer_bytes"] = int(args.buffer_kb * 1000)
    if args.segments is not None:
        kwargs["n_segments"] = args.segments
    if args.senders is not None:
        kwargs["n_senders"] = args.senders
    if args.aqm:
        kwargs["aqm"] = args.aqm
    if args.ecn_kb is not None:
        kwargs["ecn_threshold_bytes"] = int(args.ecn_kb * 1000)
    print(describe_topology(args.topo_class, **kwargs))
    return 0


def _cmd_topo_matrix(args) -> int:
    from repro.evalx.leagues import Participant
    from repro.evalx.topo_matrix import run_topology_matrix
    from repro.netsim.topo import TOPOLOGY_CLASSES

    classes = (
        tuple(c for c in args.classes.split(",") if c)
        if args.classes else TOPOLOGY_CLASSES
    )
    participants = [
        Participant.from_scheme(s) for s in args.schemes.split(",") if s
    ]
    if args.agent:
        agent = _load_agent(
            args.agent, args.enc_dim, args.gru_dim, args.components, args.atoms
        )
        if args.serve:
            participants.append(Participant.from_served(agent.policy))
        else:
            participants.append(Participant.from_agent(agent))
    matrix = run_topology_matrix(
        participants,
        classes=classes,
        duration=args.duration,
        workers=args.workers,
        progress=(lambda msg: print(msg)) if args.verbose else None,
    )
    print(matrix.format_table())
    if args.out:
        matrix.save(args.out)
        print(f"saved matrix to {args.out}")
    return 0


def _cmd_aqm_matrix(args) -> int:
    from repro.evalx.aqm_matrix import DEFAULT_MATRIX_AQMS, run_aqm_matrix
    from repro.evalx.leagues import Participant

    aqms = (
        tuple(a for a in args.aqms.split(",") if a)
        if args.aqms else DEFAULT_MATRIX_AQMS
    )
    if args.ecn_model:
        # route the trained marking model into the learned_ecn column
        aqms = tuple(
            f"learned_ecn@{args.ecn_model}" if a == "learned_ecn" else a
            for a in aqms
        )
    participants = [
        Participant.from_scheme(s) for s in args.schemes.split(",") if s
    ]
    if args.agent:
        agent = _load_agent(
            args.agent, args.enc_dim, args.gru_dim, args.components, args.atoms
        )
        if args.serve:
            participants.append(Participant.from_served(agent.policy))
        else:
            participants.append(Participant.from_agent(agent))
    matrix = run_aqm_matrix(
        participants,
        aqms=aqms,
        duration=args.duration,
        workers=args.workers,
        ecn_threshold_bdp=args.ecn_bdp,
        progress=(lambda msg: print(msg)) if args.verbose else None,
    )
    print(matrix.format_table())
    if args.out:
        matrix.save(args.out)
        print(f"saved matrix to {args.out}")
    return 0


def _cmd_aqm_trace(args) -> int:
    from repro.aqm_learn import TraceSpec, collect_queue_traces

    spec = TraceSpec(
        aqm=args.aqm,
        bw_mbps=args.bw,
        min_rtt=args.rtt,
        buffer_bytes=int(args.buffer_kb * 1000),
        duration=args.duration,
        arrival_rate=args.arrival_rate,
        scheme=args.scheme,
    )
    paths = collect_queue_traces(
        spec,
        shards=args.shards,
        seed=args.seed,
        out_dir=args.out_dir,
        progress=print,
    )
    print(f"wrote {len(paths)} telemetry shard(s) under {args.out_dir}")
    return 0


def _cmd_aqm_learn(args) -> int:
    import json

    from repro.aqm_learn import fit_ecn_predictor

    model, report = fit_ecn_predictor(
        args.traces,
        target=args.target,
        hidden=args.hidden,
        epochs=args.epochs,
        lr=args.lr,
        seed=args.seed,
        progress=(lambda msg: print(msg)) if args.verbose else None,
    )
    print(json.dumps(report.to_json(), indent=1))
    model.save(args.out)
    print(f"saved ECN predictor to {args.out}")
    return 0


def _add_workers_arg(p: argparse.ArgumentParser) -> None:
    import os

    p.add_argument(
        "--workers",
        type=int,
        default=os.cpu_count() or 1,
        help="rollout worker processes (1 = serial; default: one per CPU)",
    )


def _add_net_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--enc-dim", type=int, default=64, dest="enc_dim")
    p.add_argument("--gru-dim", type=int, default=64, dest="gru_dim")
    p.add_argument("--components", type=int, default=3)
    p.add_argument("--atoms", type=int, default=21)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("collect", help="collect the pool of policies")
    p.add_argument("--scale", choices=("mini", "small", "full"), default="mini")
    p.add_argument("--schemes", default="", help="comma-separated subset")
    p.add_argument("--out", default="pool.npz")
    p.add_argument("--store", default="",
                   help="stream rollouts into a sharded store directory "
                        "instead of a monolithic .npz (overrides --out)")
    p.add_argument("--shard-mb", type=int, default=32, dest="shard_mb",
                   help="per-shard byte budget for --store, in MiB")
    p.add_argument("--task-timeout", type=float, default=None,
                   dest="task_timeout", metavar="SECONDS",
                   help="per-rollout watchdog deadline; hung workers are "
                        "terminated and their tasks re-dispatched")
    p.add_argument("--aqm", default="",
                   help="collect under specific queue discipline(s): a "
                        "comma-separated list of registered AQMs (taildrop, "
                        "codel, pie, bode, fq_codel, learned_ecn[@ckpt]); "
                        "alone it selects the AQM env family, with "
                        "--topology it re-queues that family's links")
    p.add_argument("--topology", default="",
                   help="collect over one topology class's env set instead "
                        "of the dumbbell training grids (parking_lot, "
                        "incast, proxy_split, or dumbbell)")
    p.add_argument("--verbose", action="store_true")
    _add_workers_arg(p)
    p.set_defaults(func=_cmd_collect)

    p = sub.add_parser("train", help="train Sage offline on a saved pool")
    p.add_argument("--pool", required=True,
                   help="pool .npz or sharded store directory")
    p.add_argument("--steps", type=int, default=300)
    p.add_argument("--checkpoints", type=int, default=7)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--log-every", type=int, default=0, dest="log_every")
    p.add_argument("--out", default="sage.npz")
    p.add_argument("--engine", choices=("fast", "legacy"), default="fast",
                   help="fused sequence-level engine (default) or the "
                        "per-timestep reference trainer")
    p.add_argument("--prefetch", type=int, default=0,
                   help="batches prepared ahead by the sampler "
                        "(0 = synchronous, legacy-identical RNG stream)")
    p.add_argument("--workers", type=int, default=1,
                   help="sampler threads when --prefetch > 0")
    p.add_argument("--grad-workers", type=int, default=0, dest="grad_workers",
                   help="data-parallel gradient worker processes "
                        "(0 = single-process; results are bit-identical "
                        "for any count that divides the grain width)")
    _add_net_args(p)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("league", help="rank schemes (and optionally an agent)")
    p.add_argument("--schemes", default="cubic,vegas,bbr2,newreno")
    p.add_argument("--agent", default="")
    p.add_argument("--serve", action="store_true",
                   help="route the agent through the serving engine")
    _add_workers_arg(p)
    _add_net_args(p)
    p.set_defaults(func=_cmd_league)

    p = sub.add_parser("deploy", help="run a trained agent in one environment")
    p.add_argument("--agent", required=True)
    p.add_argument("--bw", type=float, default=24.0)
    p.add_argument("--rtt", type=float, default=0.04)
    p.add_argument("--buffer", type=float, default=2.0)
    p.add_argument("--cubics", type=int, default=0)
    p.add_argument("--duration", type=float, default=10.0)
    _add_net_args(p)
    p.set_defaults(func=_cmd_deploy)

    p = sub.add_parser(
        "train-bench",
        help="benchmark the fused training engine vs the legacy trainer",
    )
    p.add_argument("--pool", default="",
                   help="saved pool .npz (default: collect the mini pool)")
    p.add_argument("--steps", type=int, default=30)
    p.add_argument("--eq-steps", type=int, default=10, dest="eq_steps",
                   help="same-seed equivalence-check steps")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--prefetch", type=int, default=2)
    p.add_argument("--workers", type=int, default=2,
                   help="sampler threads for the fused engine")
    p.add_argument("--collect-workers", type=int, default=1,
                   dest="collect_workers",
                   help="rollout processes when collecting the pool")
    p.add_argument("--schemes", default="", help="comma-separated subset "
                   "for pool collection")
    p.add_argument("--scaling-workers", default="1,2,4",
                   dest="scaling_workers",
                   help="comma-separated data-parallel worker counts for "
                        "the worker-scaling curve (empty to skip)")
    p.add_argument("--scaling-steps", type=int, default=12,
                   dest="scaling_steps",
                   help="training steps per worker count in the scaling "
                        "curve")
    p.add_argument("--out", default="BENCH_train.json")
    _add_net_args(p)
    p.set_defaults(func=_cmd_train_bench)

    p = sub.add_parser(
        "pool", help="manage sharded trajectory stores (the data plane)"
    )
    pool_sub = p.add_subparsers(dest="pool_command", required=True)

    q = pool_sub.add_parser(
        "pack", help="convert a legacy .npz pool into a sharded store"
    )
    q.add_argument("source", help="legacy pool .npz (or an existing store)")
    q.add_argument("out", help="output store directory")
    q.add_argument("--shard-mb", type=int, default=32, dest="shard_mb",
                   help="per-shard byte budget, in MiB")
    q.set_defaults(func=_cmd_pool_pack)

    q = pool_sub.add_parser(
        "merge", help="merge stores / pools (e.g. per-worker shard dirs)"
    )
    q.add_argument("sources", nargs="+",
                   help="store directories or legacy .npz pools, in order")
    q.add_argument("-o", "--out", required=True, help="output store directory")
    q.add_argument("--shard-mb", type=int, default=32, dest="shard_mb")
    q.set_defaults(func=_cmd_pool_merge)

    q = pool_sub.add_parser(
        "verify", help="audit shard checksums; quarantine corrupt shards"
    )
    q.add_argument("store", help="store directory")
    q.add_argument("--no-quarantine", action="store_true", dest="no_quarantine",
                   help="report corruption without moving shards")
    q.add_argument("--strict", action="store_true",
                   help="exit non-zero if any shard was corrupt")
    q.set_defaults(func=_cmd_pool_verify)

    q = pool_sub.add_parser(
        "stats", help="per-scheme transition counts + shard/checksum table"
    )
    q.add_argument("store", help="store directory")
    q.set_defaults(func=_cmd_pool_stats)

    p = sub.add_parser(
        "pipeline",
        help="supervised, resumable collect -> verify -> train -> eval run",
    )
    pipe_sub = p.add_subparsers(dest="pipeline_command", required=True)

    q = pipe_sub.add_parser("run", help="start a fresh pipeline run")
    q.add_argument("--workdir", required=True,
                   help="run directory (store, checkpoint, state journal)")
    q.add_argument("--scale", choices=("mini", "small", "full"),
                   default="mini")
    q.add_argument("--schemes", default="cubic",
                   help="comma-separated subset ('' = all pool schemes)")
    q.add_argument("--workers", type=int, default=1)
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--steps", type=int, default=12,
                   help="training steps")
    q.add_argument("--grad-workers", type=int, default=0, dest="grad_workers",
                   help="data-parallel gradient worker processes for the "
                        "train stage (0 = single-process)")
    q.add_argument("--task-timeout", type=float, default=None,
                   dest="task_timeout", metavar="SECONDS",
                   help="per-rollout watchdog deadline during collection")
    q.add_argument("--eval-duration", type=float, default=3.0,
                   dest="eval_duration",
                   help="seconds of served-policy evaluation rollout")
    q.add_argument("--fault-plan", default="", dest="fault_plan",
                   help="FaultPlan JSON to inject (chaos mode)")
    q.set_defaults(func=_cmd_pipeline_run, resume=False)

    q = pipe_sub.add_parser(
        "resume",
        help="continue an interrupted run from its state journal",
    )
    q.add_argument("--workdir", required=True)
    q.set_defaults(func=_cmd_pipeline_run, resume=True)

    q = pipe_sub.add_parser(
        "status", help="show stage states and the fault/recovery log"
    )
    q.add_argument("--workdir", required=True)
    q.add_argument("--json", action="store_true",
                   help="machine-readable output (stage states, retries, "
                        "fault log)")
    q.set_defaults(func=_cmd_pipeline_status)

    p = sub.add_parser(
        "soak",
        help="run the pipeline under continuous chaos and check "
             "recovery SLOs",
    )
    p.add_argument("--workdir", required=True)
    p.add_argument("--duration", type=float, default=30.0,
                   help="wall-clock budget in seconds (rounds keep "
                        "starting until it is spent)")
    p.add_argument("--min-rounds", type=int, default=1)
    p.add_argument("--max-rounds", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--phases", default="collect,train,serve",
                   help="comma-separated subset of collect,train,serve")
    p.add_argument("--rates", default="",
                   help="comma-separated site=rate overrides (expected "
                        "faults per occurrence slot); default: every site "
                        "at its chaos-default rate")
    p.add_argument("--rate-scale", type=float, default=1.0,
                   help="multiply every site's rate by this factor")
    p.add_argument("--scale", default="mini")
    p.add_argument("--schemes", default="cubic")
    p.add_argument("--steps-per-round", type=int, default=6)
    p.add_argument("--serve-ticks", type=int, default=40)
    p.add_argument("--serve-flows", type=int, default=4)
    p.add_argument("--workload-duration", type=float, default=1.0)
    p.add_argument("--arrival-rate", type=float, default=40.0)
    p.add_argument("--slo-mttr-p50", type=float, default=30.0)
    p.add_argument("--slo-mttr-p99", type=float, default=120.0)
    p.add_argument("--min-sites", type=int, default=0,
                   help="fail unless faults fired at >= this many sites")
    p.add_argument("--no-identity", action="store_true",
                   help="skip the fault-free identity twin (halves runtime)")
    p.add_argument("--out", default="",
                   help="write BENCH_soak.json here")
    p.set_defaults(func=_cmd_soak)

    p = sub.add_parser(
        "chaos", help="deterministic fault-injection plans"
    )
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)

    q = chaos_sub.add_parser(
        "plan", help="generate (and optionally save) a seeded FaultPlan"
    )
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--faults", default="",
                   help="comma-separated sites, each optionally site=count "
                        "(default: one fault at every site)")
    q.add_argument("--universes", default="",
                   help="comma-separated group=N target-universe overrides, "
                        "e.g. collector=8,train=12")
    q.add_argument("--out", default="", help="write the plan JSON here")
    q.set_defaults(func=_cmd_chaos_plan)

    p = sub.add_parser(
        "serve-bench",
        help="benchmark batched multi-flow serving vs batch=1 agents",
    )
    p.add_argument("--flows", type=int, default=64)
    p.add_argument("--ticks", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-harness", action="store_true", dest="no_harness",
                   help="skip the end-to-end multi-flow network harness")
    p.add_argument("--tiers", action="store_true",
                   help="also benchmark the tiered router (distilled "
                        "symbolic tier 0 in front of the batched NN)")
    p.add_argument("--coverage", type=float, default=0.98,
                   help="distilled gate's target training coverage")
    p.add_argument("--refresh", type=int, default=32,
                   help="forced NN refresh interval (ticks per flow)")
    p.add_argument("--no-league", action="store_true", dest="no_league",
                   help="skip the league-fidelity check in --tiers mode")
    p.add_argument("--league-duration", type=float, default=10.0,
                   dest="league_duration",
                   help="per-env seconds for the league-fidelity check")
    p.add_argument("--workload", action="store_true",
                   help="also serve an open-loop workload (Poisson arrivals "
                        "of short served flows) and report FCT percentiles")
    p.add_argument("--topology", default="dumbbell",
                   help="topology class for --workload mode")
    p.add_argument("--arrival-rate", type=float, default=200.0,
                   dest="arrival_rate",
                   help="sessions/second for --workload mode")
    p.add_argument("--workload-duration", type=float, default=5.0,
                   dest="workload_duration",
                   help="arrival-window seconds for --workload mode")
    p.add_argument("--mean-size-kb", type=float, default=30.0,
                   dest="mean_size_kb",
                   help="mean flow size (KB) for --workload mode")
    p.add_argument("--out", default="BENCH_serve.json")
    _add_net_args(p)
    p.set_defaults(func=_cmd_serve_bench)

    p = sub.add_parser(
        "topo",
        help="inspect topology classes and run the scheme x topology matrix",
    )
    topo_sub = p.add_subparsers(dest="topo_command", required=True)

    q = topo_sub.add_parser(
        "describe", help="print a topology class's nodes, links, and paths"
    )
    q.add_argument("topo_class",
                   help="dumbbell, parking_lot, incast, or proxy_split")
    q.add_argument("--bw", type=float, default=None, help="bottleneck Mbps")
    q.add_argument("--rtt", type=float, default=None,
                   help="base two-way propagation delay, seconds")
    q.add_argument("--buffer-kb", type=float, default=None, dest="buffer_kb")
    q.add_argument("--segments", type=int, default=None,
                   help="parking-lot segment count")
    q.add_argument("--senders", type=int, default=None,
                   help="incast fan-in")
    q.add_argument("--aqm", default="",
                   help="queue discipline on the class's congested links")
    q.add_argument("--ecn-kb", type=float, default=None, dest="ecn_kb",
                   help="DCTCP-style step-marking threshold (KB; incast "
                        "egress, taildrop or natively marking AQMs)")
    q.set_defaults(func=_cmd_topo_describe)

    q = topo_sub.add_parser(
        "matrix",
        help="winning-rate matrix: every scheme across every topology class",
    )
    q.add_argument("--schemes", default="cubic,newreno,vegas,westwood")
    q.add_argument("--classes", default="",
                   help="comma-separated topology classes (default: all)")
    q.add_argument("--duration", type=float, default=12.0,
                   help="seconds per environment rollout")
    q.add_argument("--agent", default="",
                   help="also enter a trained agent .npz")
    q.add_argument("--serve", action="store_true",
                   help="run the agent through the serving engine")
    q.add_argument("--out", default="",
                   help="write the matrix JSON here (the CI artifact)")
    q.add_argument("--verbose", action="store_true")
    _add_workers_arg(q)
    _add_net_args(q)
    q.set_defaults(func=_cmd_topo_matrix)

    p = sub.add_parser(
        "aqm",
        help="intelligent queues: the scheme x AQM matrix and the "
             "learned-ECN trace/fit loop",
    )
    aqm_sub = p.add_subparsers(dest="aqm_command", required=True)

    q = aqm_sub.add_parser(
        "matrix",
        help="winning-rate matrix: every scheme under every queue discipline",
    )
    q.add_argument("--schemes", default="cubic,newreno,vegas,westwood")
    q.add_argument("--aqms", default="",
                   help="comma-separated AQM columns (default: taildrop,"
                        "codel,pie,fq_codel,learned_ecn)")
    q.add_argument("--ecn-model", default="", dest="ecn_model",
                   help="trained predictor .npz for the learned_ecn column "
                        "(default: its seeded threshold fallback)")
    q.add_argument("--ecn-bdp", type=float, default=0.0, dest="ecn_bdp",
                   help="arm DCTCP-style step marking at this fraction of "
                        "the BDP on threshold-capable queues")
    q.add_argument("--duration", type=float, default=12.0,
                   help="seconds per environment rollout")
    q.add_argument("--agent", default="",
                   help="also enter a trained agent .npz")
    q.add_argument("--serve", action="store_true",
                   help="run the agent through the serving engine")
    q.add_argument("--out", default="",
                   help="write the matrix JSON here (the CI artifact)")
    q.add_argument("--verbose", action="store_true")
    _add_workers_arg(q)
    _add_net_args(q)
    q.set_defaults(func=_cmd_aqm_matrix)

    q = aqm_sub.add_parser(
        "trace",
        help="log queue-telemetry shards from instrumented workloads",
    )
    q.add_argument("--aqm", default="codel",
                   help="teacher discipline on the instrumented bottleneck")
    q.add_argument("--bw", type=float, default=24.0, help="bottleneck Mbps")
    q.add_argument("--rtt", type=float, default=0.04,
                   help="propagation RTT, seconds")
    q.add_argument("--buffer-kb", type=float, default=90.0, dest="buffer_kb")
    q.add_argument("--duration", type=float, default=6.0,
                   help="arrival window per shard, seconds")
    q.add_argument("--arrival-rate", type=float, default=40.0,
                   dest="arrival_rate", help="workload sessions/second")
    q.add_argument("--scheme", default="cubic",
                   help="CC scheme driving the traffic")
    q.add_argument("--shards", type=int, default=2)
    q.add_argument("--seed", type=int, default=1)
    q.add_argument("--out-dir", default=".", dest="out_dir")
    q.set_defaults(func=_cmd_aqm_trace)

    q = aqm_sub.add_parser(
        "learn",
        help="fit the ECN-marking predictor from telemetry shards",
    )
    q.add_argument("traces", nargs="+", help="queue_trace_*.npz shards")
    q.add_argument("--target", type=float, default=0.005,
                   help="sojourn-time target the predictor learns to guard")
    q.add_argument("--hidden", type=int, default=8,
                   help="hidden units (0 = logistic regression)")
    q.add_argument("--epochs", type=int, default=400)
    q.add_argument("--lr", type=float, default=0.5)
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--out", default="ecn_model.npz")
    q.add_argument("--verbose", action="store_true")
    q.set_defaults(func=_cmd_aqm_learn)

    p = sub.add_parser(
        "distill",
        help="fit / evaluate the symbolic controller distilled from a policy",
    )
    dis_sub = p.add_subparsers(dest="distill_command", required=True)

    q = dis_sub.add_parser(
        "fit", help="distill a policy into a CART controller on a pool"
    )
    q.add_argument("--agent", required=True, help="trained policy .npz")
    q.add_argument("--pool", required=True,
                   help="pool .npz or sharded store directory")
    q.add_argument("--out", default="distilled.npz")
    q.add_argument("--max-depth", type=int, default=12, dest="max_depth")
    q.add_argument("--max-leaves", type=int, default=256, dest="max_leaves")
    q.add_argument("--min-leaf", type=int, default=16, dest="min_leaf")
    q.add_argument("--coverage", type=float, default=0.85,
                   help="target fraction of decisions the symbolic tier "
                        "should answer")
    q.add_argument("--refresh", type=int, default=8,
                   help="serving forces an NN forward every REFRESH ticks")
    q.add_argument("--max-samples", type=int, default=0, dest="max_samples",
                   help="subsample the distillation dataset (0 = all)")
    q.add_argument("--rules", type=int, default=0,
                   help="print the first N fitted if-then rules")
    _add_net_args(q)
    q.set_defaults(func=_cmd_distill_fit)

    q = dis_sub.add_parser(
        "eval", help="imitation quality of a distilled controller on a pool"
    )
    q.add_argument("--model", required=True, help="distilled controller .npz")
    q.add_argument("--agent", required=True, help="trained policy .npz")
    q.add_argument("--pool", required=True,
                   help="pool .npz or sharded store directory")
    q.add_argument("--max-samples", type=int, default=0, dest="max_samples")
    _add_net_args(q)
    q.set_defaults(func=_cmd_distill_eval)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
