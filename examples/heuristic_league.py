#!/usr/bin/env python
"""Fig.-1-style league: rank the kernel heuristics on Set I and Set II.

Demonstrates the evaluation framework: environments, interval scoring,
winner margins, and winning rates. Expect Vegas-like schemes to top the
single-flow table while scoring near zero on TCP-friendliness, and
Cubic-family schemes to do the reverse — the tension Sage resolves.

Run:  python examples/heuristic_league.py  [--schemes cubic,vegas,...]
"""

import argparse

from repro.collector.environments import set1_environments, set2_environments
from repro.evalx.leagues import HEURISTIC_LEAGUE, Participant, run_league


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--schemes",
        default="cubic,vegas,bbr2,newreno,yeah,westwood",
        help="comma-separated scheme names (default: a fast subset; "
        f"full league: {','.join(HEURISTIC_LEAGUE)})",
    )
    parser.add_argument("--duration", type=float, default=10.0)
    args = parser.parse_args()

    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    participants = [Participant.from_scheme(s) for s in schemes]
    set1 = set1_environments(
        bws=(24.0,), rtts=(0.02, 0.06), buffers=(1.0, 4.0),
        step_ms=(0.5, 2.0), duration=args.duration,
    )
    set2 = set2_environments(
        bws=(24.0,), rtts=(0.02, 0.06), buffers=(2.0, 8.0),
        duration=args.duration + 4.0,
    )
    print(f"running {len(participants)} schemes over "
          f"{len(set1)} Set I + {len(set2)} Set II environments ...")
    result = run_league(participants, set1=set1, set2=set2)
    print()
    print(result.format_table())


if __name__ == "__main__":
    main()
