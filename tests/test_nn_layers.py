"""Tests for layers, GRU, heads, optimizer, and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.autograd import Tensor
from repro.nn.gru import GRU
from repro.nn.heads import (
    LOG_ACTION_HI,
    LOG_ACTION_LO,
    DistributionalHead,
    GMMHead,
)
from repro.nn.layers import (
    LayerNorm,
    LeakyReLU,
    Linear,
    Module,
    ResidualBlock,
    Sequential,
    Tanh,
)
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.serial import load_params, save_params


RNG = np.random.default_rng(0)


class TestLinear:
    def test_shape(self):
        lin = Linear(4, 7, RNG)
        out = lin(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_gradients_reach_params(self):
        lin = Linear(4, 2, RNG)
        lin(Tensor(np.ones((3, 4)))).sum().backward()
        assert lin.W.grad is not None
        assert lin.b.grad is not None
        np.testing.assert_allclose(lin.b.grad, np.full(2, 3.0))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3, RNG)


class TestLayerNorm:
    def test_output_normalized(self):
        ln = LayerNorm(8)
        x = RNG.standard_normal((5, 8)) * 10 + 3
        out = ln(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_learned_scale_shift(self):
        ln = LayerNorm(4)
        ln.gamma.data[:] = 2.0
        ln.beta.data[:] = 1.0
        out = ln(Tensor(RNG.standard_normal((3, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_gradients_flow(self):
        ln = LayerNorm(4)
        ln(Tensor(RNG.standard_normal((3, 4)), requires_grad=True)).sum().backward()
        assert ln.gamma.grad is not None


class TestResidualAndSequential:
    def test_residual_is_identity_at_zero_weights(self):
        block = ResidualBlock(6, RNG)
        block.fc2.W.data[:] = 0.0
        block.fc2.b.data[:] = 0.0
        x = RNG.standard_normal((2, 6))
        np.testing.assert_allclose(block(Tensor(x)).data, x)

    def test_sequential_composes(self):
        seq = Sequential(Linear(3, 5, RNG), LeakyReLU(), Linear(5, 2, RNG), Tanh())
        out = seq(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)
        assert np.all(np.abs(out.data) <= 1.0)


class TestModuleTree:
    def test_named_parameters_cover_submodules(self):
        seq = Sequential(Linear(3, 4, RNG), ResidualBlock(4, RNG))
        names = [n for n, _ in seq.named_parameters()]
        assert "layers.0.W" in names
        assert "layers.1.norm.gamma" in names

    def test_state_dict_roundtrip(self):
        a = Sequential(Linear(3, 4, RNG), LayerNorm(4))
        b = Sequential(Linear(3, 4, RNG), LayerNorm(4))
        b.load_state_dict(a.state_dict())
        x = Tensor(RNG.standard_normal((2, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_load_rejects_mismatched_keys(self):
        a = Linear(3, 4, RNG)
        with pytest.raises(ValueError):
            a.load_state_dict({"W": np.zeros((3, 4))})

    def test_load_rejects_shape_mismatch(self):
        a = Linear(3, 4, RNG)
        state = a.state_dict()
        state["W"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_soft_update_interpolates(self):
        a, b = Linear(2, 2, RNG), Linear(2, 2, RNG)
        wa, wb = a.W.data.copy(), b.W.data.copy()
        a.soft_update(b, tau=0.25)
        np.testing.assert_allclose(a.W.data, 0.75 * wa + 0.25 * wb)

    def test_zero_grad(self):
        lin = Linear(2, 2, RNG)
        lin(Tensor(np.ones((1, 2)))).sum().backward()
        lin.zero_grad()
        assert lin.W.grad is None


class TestGRU:
    def test_step_shape(self):
        gru = GRU(5, 8, RNG)
        h = gru.step(Tensor(np.ones((3, 5))), gru.initial_state(3))
        assert h.shape == (3, 8)

    def test_sequence_unroll(self):
        gru = GRU(5, 8, RNG)
        xs = [Tensor(RNG.standard_normal((2, 5))) for _ in range(4)]
        outs, h_final = gru(xs)
        assert len(outs) == 4
        np.testing.assert_allclose(outs[-1].data, h_final.data)

    def test_hidden_state_carries_memory(self):
        gru = GRU(2, 4, RNG)
        x = Tensor(np.ones((1, 2)))
        h1 = gru.step(x, gru.initial_state(1))
        h2 = gru.step(x, h1)
        assert not np.allclose(h1.data, h2.data)

    def test_gradients_flow_through_time(self):
        gru = GRU(2, 3, RNG)
        xs = [Tensor(np.ones((1, 2))) for _ in range(5)]
        outs, _ = gru(xs)
        outs[-1].sum().backward()
        assert gru.wz.W.grad is not None

    def test_empty_sequence_raises(self):
        with pytest.raises(ValueError):
            GRU(2, 3, RNG)([])


class TestGMMHead:
    def _head(self, k=3):
        return GMMHead(8, k, np.random.default_rng(1))

    def test_log_prob_shape(self):
        head = self._head()
        lp = head.log_prob(Tensor(np.ones((4, 8))), np.zeros(4))
        assert lp.shape == (4,)

    def test_log_prob_matches_manual_single_component(self):
        head = self._head(k=1)
        h = Tensor(RNG.standard_normal((2, 8)))
        a = np.array([0.1, -0.2])
        lp = head.log_prob(h, a).data
        logits, means, log_std = head._split(h)
        sigma = np.exp(log_std.data[:, 0])
        mu = means.data[:, 0]
        manual = (
            -0.5 * ((a - mu) / sigma) ** 2
            - np.log(sigma)
            - 0.5 * np.log(2 * np.pi)
        )
        np.testing.assert_allclose(lp, manual, atol=1e-9)

    def test_log_prob_integrates_to_one(self):
        head = self._head()
        h = Tensor(RNG.standard_normal((1, 8)))
        grid = np.linspace(-5, 5, 4001)
        lp = np.array(
            [float(head.log_prob(h, np.array([u])).data[0]) for u in grid]
        )
        integral = np.trapezoid(np.exp(lp), grid)
        assert integral == pytest.approx(1.0, abs=0.02)

    def test_samples_within_action_bounds(self):
        head = self._head()
        samples = head.sample(Tensor(RNG.standard_normal((64, 8))), RNG)
        assert np.all(samples >= np.exp(LOG_ACTION_LO) - 1e-9)
        assert np.all(samples <= np.exp(LOG_ACTION_HI) + 1e-9)

    def test_mode_deterministic(self):
        head = self._head()
        h = Tensor(RNG.standard_normal((3, 8)))
        np.testing.assert_allclose(head.mode(h), head.mode(h))

    def test_rejects_zero_components(self):
        with pytest.raises(ValueError):
            GMMHead(8, 0, RNG)

    def test_gradient_flows_to_projection(self):
        head = self._head()
        lp = head.log_prob(Tensor(np.ones((2, 8))), np.zeros(2))
        (lp * -1.0).mean().backward()
        assert head.proj.W.grad is not None


class TestDistributionalHead:
    def _head(self, **kw):
        return DistributionalHead(8, np.random.default_rng(2), **kw)

    def test_expected_value_within_support(self):
        head = self._head(n_atoms=11, v_min=-1.0, v_max=3.0)
        v = head.expected_value(Tensor(RNG.standard_normal((5, 8)))).data
        assert np.all(v >= -1.0) and np.all(v <= 3.0)

    @given(r=st.floats(-5.0, 5.0), gamma=st.floats(0.5, 0.99))
    @settings(max_examples=20, deadline=None)
    def test_projection_conserves_probability_mass(self, r, gamma):
        head = self._head(n_atoms=11, v_min=0.0, v_max=10.0)
        probs = np.random.default_rng(3).dirichlet(np.ones(11), size=4)
        target = head.project_target(np.full(4, r), gamma, probs)
        np.testing.assert_allclose(target.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(target >= -1e-12)

    def test_projection_of_point_mass(self):
        head = self._head(n_atoms=11, v_min=0.0, v_max=10.0)
        probs = np.zeros((1, 11))
        probs[0, 0] = 1.0  # all mass at atom 0 (value 0)
        target = head.project_target(np.array([5.0]), 0.0, probs)
        # r + gamma*0 = 5.0 lands exactly on atom 5
        assert target[0, 5] == pytest.approx(1.0)

    def test_projection_clips_to_support(self):
        head = self._head(n_atoms=11, v_min=0.0, v_max=10.0)
        probs = np.full((1, 11), 1.0 / 11)
        target = head.project_target(np.array([100.0]), 0.99, probs)
        assert target[0, -1] == pytest.approx(1.0)

    def test_cross_entropy_minimized_at_match(self):
        head = self._head(n_atoms=5)
        h = Tensor(RNG.standard_normal((3, 8)))
        with np.errstate(all="ignore"):
            pred = head.logits(h).softmax(axis=-1).data
        ce_match = float(head.cross_entropy(h, pred).data)
        other = np.roll(pred, 1, axis=1)
        ce_other = float(head.cross_entropy(h, other).data)
        assert ce_match <= ce_other

    def test_rejects_bad_support(self):
        with pytest.raises(ValueError):
            self._head(n_atoms=1)
        with pytest.raises(ValueError):
            self._head(v_min=5.0, v_max=1.0)


class TestOptim:
    def test_adam_minimizes_quadratic(self):
        w = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = Adam([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = (w * w).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, 0.0, atol=1e-2)

    def test_clip_grad_norm_scales(self):
        w = Tensor(np.zeros(4), requires_grad=True)
        w.grad = np.full(4, 10.0)
        pre = clip_grad_norm([w], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0)

    def test_clip_noop_when_small(self):
        w = Tensor(np.zeros(4), requires_grad=True)
        w.grad = np.full(4, 0.01)
        clip_grad_norm([w], max_norm=1.0)
        np.testing.assert_allclose(w.grad, 0.01)

    def test_adam_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.0)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        a = Sequential(Linear(3, 4, RNG), LayerNorm(4))
        save_params(a, tmp_path / "model.npz")
        b = Sequential(Linear(3, 4, RNG), LayerNorm(4))
        load_params(b, tmp_path / "model.npz")
        x = Tensor(RNG.standard_normal((2, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_corrupt_archive_raises_clear_error(self, tmp_path):
        # a truncated/garbage checkpoint must not surface a bare BadZipFile
        bad = tmp_path / "corrupt.npz"
        bad.write_bytes(b"not a zip archive at all")
        m = Sequential(Linear(3, 4, RNG))
        with pytest.raises(ValueError, match="corrupt.npz.*regenerate"):
            load_params(m, bad)

    def test_missing_file_still_file_not_found(self, tmp_path):
        m = Sequential(Linear(3, 4, RNG))
        with pytest.raises(FileNotFoundError):
            load_params(m, tmp_path / "does_not_exist.npz")
