"""Property-based stress tests: transport invariants under random networks.

Whatever the bottleneck looks like — any capacity, RTT, buffer, AQM — the
transport must preserve stream integrity, physical plausibility of its
estimates, and conservation of its counters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collector.environments import EnvConfig, build_network
from repro.tcp.flow import Flow

SCHEMES = ["cubic", "vegas", "bbr2", "newreno", "westwood"]


def run_env(scheme, bw, rtt, buf, aqm, duration=4.0, seed=0):
    env = EnvConfig(
        env_id=f"prop-{scheme}", kind="flat", bw_mbps=bw, min_rtt=rtt,
        buffer_bdp=buf, duration=duration, aqm=aqm,
    )
    loop, net = build_network(env)
    flow = Flow(net, 0, scheme, min_rtt=rtt)
    flow.start()
    t = 0.0
    while t < duration:
        t += 0.1
        loop.run_until(t)
        flow.sample()
    flow.stop()
    return env, flow


@st.composite
def network_params(draw):
    return dict(
        scheme=draw(st.sampled_from(SCHEMES)),
        bw=draw(st.sampled_from([4.0, 12.0, 24.0, 48.0])),
        rtt=draw(st.sampled_from([0.01, 0.04, 0.12])),
        buf=draw(st.sampled_from([0.5, 1.0, 4.0, 8.0])),
        aqm=draw(st.sampled_from(["taildrop", "headdrop", "codel", "pie", "bode"])),
    )


class TestTransportInvariants:
    @given(p=network_params())
    @settings(max_examples=12, deadline=None)
    def test_stream_integrity(self, p):
        env, flow = run_env(**p)
        r = flow.receiver
        # every distinct packet counted exactly once
        assert r.total_packets == r.rcv_next + len(r._received)
        # cumulative ack never exceeds the highest packet seen
        assert r.rcv_next <= r.max_seq_seen + 1

    @given(p=network_params())
    @settings(max_examples=12, deadline=None)
    def test_rtt_estimates_physical(self, p):
        env, flow = run_env(**p)
        s = flow.sender
        if s.srtt > 0:
            # srtt can never be below propagation...
            assert s.srtt >= p["rtt"] * 0.99
            # ...or above propagation + max queueing (+ generous slack)
            max_queue = env.buffer_bytes * 8.0 / (p["bw"] * 1e6)
            assert s.srtt <= (p["rtt"] + max_queue) * 2.0 + 0.1

    @given(p=network_params())
    @settings(max_examples=12, deadline=None)
    def test_counter_conservation(self, p):
        env, flow = run_env(**p)
        s = flow.sender
        # delivered + outstanding == sent distinct sequences
        assert s.delivered == s.snd_una
        assert s.snd_una + len(s._unacked) >= s.snd_nxt - 1024  # holes bounded
        assert s.retransmits <= s.sent_packets
        assert s.inflight >= 0

    @given(p=network_params())
    @settings(max_examples=8, deadline=None)
    def test_link_never_overdelivers(self, p):
        env, flow = run_env(**p)
        delivered_bits = flow.receiver.total_bytes * 8.0
        capacity_bits = p["bw"] * 1e6 * 4.0 * 1.25  # +25% slack for timing
        assert delivered_bits <= capacity_bits

    @given(p=network_params())
    @settings(max_examples=8, deadline=None)
    def test_progress_is_made(self, p):
        env, flow = run_env(**p)
        # any sane scheme moves data on a clean link within 4 s
        assert flow.receiver.total_packets > 10


class TestMultiFlowInvariants:
    @given(
        scheme=st.sampled_from(SCHEMES),
        n=st.integers(2, 4),
    )
    @settings(max_examples=6, deadline=None)
    def test_shared_link_conservation(self, scheme, n):
        env = EnvConfig(
            env_id="prop-share", kind="flat", bw_mbps=24.0, min_rtt=0.04,
            buffer_bdp=2.0, duration=5.0,
        )
        loop, net = build_network(env)
        flows = [Flow(net, i, scheme, min_rtt=0.04) for i in range(n)]
        for f in flows:
            f.start()
        loop.run_until(5.0)
        total_bits = sum(f.receiver.total_bytes for f in flows) * 8.0
        assert total_bits <= 24e6 * 5.0 * 1.25
        for f in flows:
            r = f.receiver
            assert r.total_packets == r.rcv_next + len(r._received)
