"""Sprout (Winstein, Sivaraman, Balakrishnan — NSDI 2013), simplified.

Designed for cellular links: forecast the link's packet-delivery process
over the next ``HORIZON`` and size the window so that, with high
probability, every sent packet clears the queue within the delay budget
(100 ms). We model the forecast as a conservative (5th-percentile-style)
discount of the filtered delivery-rate estimate, which reproduces Sprout's
cautious-rate/low-delay behaviour and its throughput sacrifice.
"""

from __future__ import annotations

from repro.netsim.packet import MSS_BYTES
from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Sprout(CongestionControl):
    """Stochastic-forecast window sizing for variable links."""

    name = "sprout"

    DELAY_BUDGET = 0.100  # seconds
    CAUTION = 0.6  # fraction of the rate estimate assumed deliverable
    FILTER = 0.8  # EWMA coefficient for the rate estimate

    def __init__(self) -> None:
        self.rate_est_bps = 0.0
        self.min_rtt = float("inf")

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt > 0:
            self.min_rtt = min(self.min_rtt, rtt)
        if sock.delivery_rate > 0:
            if self.rate_est_bps == 0.0:
                self.rate_est_bps = sock.delivery_rate
            else:
                self.rate_est_bps = (
                    self.FILTER * self.rate_est_bps
                    + (1.0 - self.FILTER) * sock.delivery_rate
                )
        rtt_s = max(sock.srtt_or_min, 0.01)
        queuing = max(rtt_s - self.min_rtt, 0.0) if self.min_rtt != float("inf") else 0.0
        if queuing < 0.1 * self.DELAY_BUDGET:
            # The forecast sees spare delay budget: probe upward gently.
            # (Sprout's forecast raises the deliverable estimate while the
            # queue is empty; cautious probing is how a closed-loop sender
            # discovers that.)
            sock.cwnd += min(0.1 * n_acked, 2.0)
            return
        if self.rate_est_bps <= 0:
            sock.cwnd += n_acked  # bootstrap before the first rate sample
            return
        # Window = conservative forecast of bytes deliverable within the
        # delay budget plus one RTT of pipe.
        budget_bytes = self.CAUTION * self.rate_est_bps / 8.0 * (
            self.DELAY_BUDGET + rtt_s
        )
        target = max(budget_bytes / MSS_BYTES, self.MIN_CWND)
        # Move smoothly toward the target to avoid oscillation.
        sock.cwnd += (target - sock.cwnd) * min(
            n_acked / max(sock.cwnd, 1.0), 1.0
        )
        sock.cwnd = max(sock.cwnd, self.MIN_CWND)

    def ssthresh(self, sock) -> float:
        # Losses mean the forecast was optimistic: back off firmly.
        self.rate_est_bps *= 0.7
        return max(sock.cwnd * 0.5, self.MIN_CWND)

    def pacing_rate(self, sock):
        if self.rate_est_bps <= 0:
            return None
        # Pace at the forecast rate, but never below what the window itself
        # implies — otherwise a low early estimate would throttle the very
        # probing that refines it.
        rtt_s = max(sock.srtt_or_min, 0.01)
        cwnd_rate = sock.cwnd * MSS_BYTES * 8.0 / rtt_s
        return max(self.CAUTION * self.rate_est_bps, 1.25 * cwnd_rate, 1e4)
