"""FaultPlan: a deterministic, serializable schedule of injected faults.

Resilience claims are only worth what exercises them. A :class:`FaultPlan`
is the repo's standing answer: a *seed-driven* schedule of faults — worker
crashes and hangs in the parallel collector, bit-flips and truncations in
the sharded datastore, NaN / loss-spike batches in the training engine,
NaN / slow forwards in the serving engine — that the chaos-mode
integration suite replays against the full pipeline. Two properties make
the injected chaos debuggable rather than flaky:

- **Deterministic.** ``FaultPlan.generate(seed=s, ...)`` always produces
  the same faults for the same arguments; a failing chaos run reproduces
  from its seed alone.
- **Serializable.** A plan round-trips through JSON (``save`` / ``load``),
  so the exact fault schedule of a run can be archived next to its
  artifacts and replayed later.

Every fault names a *site* (``subsystem.kind``) and a *target* — the
occurrence index at that site: the task index for collector faults, the
shard index for datastore faults, the batch index for training faults, the
tick index for serving faults. Injection itself lives in
:mod:`repro.chaos.inject`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["SITES", "FaultSpec", "FaultPlan", "DEFAULT_PARAMS", "DEFAULT_UNIVERSES"]

PLAN_SCHEMA_VERSION = 1

#: every injectable fault site and what firing it does
SITES: Dict[str, str] = {
    "collector.crash": "kill the worker process running the target task "
                       "(first dispatch round only)",
    "collector.hang": "stall the target task for `param` seconds "
                      "(first dispatch round only)",
    "datastore.bitflip": "flip one byte of the target shard's states file "
                         "after it commits",
    "datastore.truncate": "truncate `param` bytes off the target shard's "
                          "rewards file after it commits",
    "train.nan": "overwrite the target training batch's rewards with NaN",
    "train.spike": "mis-scale the target training batch: states and "
                   "rewards x `param`",
    "train.workercrash": "kill gradient worker `param` before the target "
                         "training step (data-parallel runs only)",
    "serve.nan": "replace the target tick's policy outputs (and hidden "
                 "states) with NaN",
    "serve.slow": "delay the target tick's forward pass by `param` seconds",
    "netsim.linkflap": "take the target topology link down for `param` "
                       "seconds, once, mid-run",
    "netsim.aqmstall": "freeze the target link's AQM dequeue side for "
                       "`param` seconds, once, mid-run (arrivals are still "
                       "policed; service stops, then recovers)",
    "workload.burst": "inject `param` extra simultaneous sessions at the "
                      "target arrival index",
}

#: default `param` per site when :meth:`FaultPlan.generate` isn't told one
DEFAULT_PARAMS: Dict[str, float] = {
    "collector.crash": 0.0,
    "collector.hang": 30.0,
    "datastore.bitflip": 0.0,
    "datastore.truncate": 64.0,
    "train.nan": 0.0,
    "train.spike": 1e6,
    "train.workercrash": 0.0,
    "serve.nan": 0.0,
    "serve.slow": 0.05,
    "netsim.linkflap": 0.5,
    "netsim.aqmstall": 0.2,
    "workload.burst": 32.0,
}

#: default target-universe size per subsystem (the `group` in
#: ``site == "group.kind"``): how many tasks / shards / batches / ticks the
#: generator draws targets from when not told the real count
DEFAULT_UNIVERSES: Dict[str, int] = {
    "collector": 8,
    "datastore": 4,
    "train": 50,
    "serve": 100,
    "netsim": 4,
    "workload": 256,
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``site`` at occurrence ``target``."""

    site: str
    target: int
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {sorted(SITES)}"
            )
        if self.target < 0:
            raise ValueError(f"fault target must be >= 0, got {self.target}")

    @property
    def group(self) -> str:
        """The subsystem half of the site (``collector``, ``train``, ...)."""
        return self.site.split(".", 1)[0]

    def to_json(self) -> Dict:
        return {"site": self.site, "target": self.target, "param": self.param}

    @classmethod
    def from_json(cls, d: Dict) -> "FaultSpec":
        return cls(
            site=str(d["site"]), target=int(d["target"]),
            param=float(d.get("param", 0.0)),
        )


class FaultPlan:
    """A seeded, serializable set of :class:`FaultSpec`\\ s.

    Construct directly from explicit specs, or let :meth:`generate` draw
    targets deterministically from the seed.
    """

    def __init__(self, seed: int = 0, faults: Sequence[FaultSpec] = ()) -> None:
        self.seed = int(seed)
        self.faults: List[FaultSpec] = sorted(
            faults, key=lambda f: (f.site, f.target)
        )

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        counts: Dict[str, int],
        universes: Optional[Dict[str, int]] = None,
        params: Optional[Dict[str, float]] = None,
    ) -> "FaultPlan":
        """Draw a plan from ``seed``: ``counts[site]`` faults per site.

        Targets within one subsystem are distinct (a task is crashed *or*
        hung, never both), drawn from ``universes[group]`` occurrence slots
        (e.g. ``{"collector": n_tasks, "train": n_batches}``). The same
        ``(seed, counts, universes, params)`` always yields the same plan.
        """
        universes = {**DEFAULT_UNIVERSES, **(universes or {})}
        params = {**DEFAULT_PARAMS, **(params or {})}
        for site, count in counts.items():
            if site not in SITES:
                raise ValueError(
                    f"unknown fault site {site!r}; known: {sorted(SITES)}"
                )
            if count < 0:
                raise ValueError(f"counts[{site!r}] must be >= 0")

        rng = np.random.default_rng(int(seed))
        faults: List[FaultSpec] = []
        # group sites by subsystem so targets never collide within one
        groups: Dict[str, List[str]] = {}
        for site in sorted(counts):
            groups.setdefault(site.split(".", 1)[0], []).append(site)
        for group in sorted(groups):
            total = sum(counts[s] for s in groups[group])
            if total == 0:
                continue
            universe = int(universes.get(group, 0))
            if total > universe:
                raise ValueError(
                    f"{total} {group} faults requested but the universe has "
                    f"only {universe} slots (universes[{group!r}])"
                )
            targets = rng.choice(universe, size=total, replace=False)
            pos = 0
            for site in groups[group]:
                for _ in range(counts[site]):
                    faults.append(
                        FaultSpec(
                            site=site,
                            target=int(targets[pos]),
                            param=float(params[site]),
                        )
                    )
                    pos += 1
        return cls(seed=seed, faults=faults)

    # ------------------------------------------------------------------
    def by_site(self, site: str) -> List[FaultSpec]:
        return [f for f in self.faults if f.site == site]

    def __len__(self) -> int:
        return len(self.faults)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FaultPlan)
            and self.seed == other.seed
            and self.faults == other.faults
        )

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, faults={self.faults!r})"

    def describe(self) -> str:
        """Human-readable fault schedule (CLI ``chaos plan`` output)."""
        lines = [f"FaultPlan seed={self.seed}: {len(self.faults)} fault(s)"]
        for f in self.faults:
            lines.append(
                f"  {f.site:20s} target={f.target:<4d} param={f.param:g}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        return {
            "schema_version": PLAN_SCHEMA_VERSION,
            "seed": self.seed,
            "faults": [f.to_json() for f in self.faults],
        }

    @classmethod
    def from_json(cls, d: Dict) -> "FaultPlan":
        version = d.get("schema_version")
        if version != PLAN_SCHEMA_VERSION:
            raise ValueError(
                f"fault plan has schema version {version!r}; this build "
                f"reads version {PLAN_SCHEMA_VERSION}"
            )
        return cls(
            seed=int(d.get("seed", 0)),
            faults=[FaultSpec.from_json(f) for f in d["faults"]],
        )

    def save(self, path) -> None:
        """Atomically write the plan as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.to_json(), indent=1) + "\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt fault plan {path}: {exc}") from exc
        return cls.from_json(data)
