"""TCP-LP (Kuzmanovic & Knightly — INFOCOM 2003).

"Low Priority" TCP: a scavenger that infers *early* congestion from one-way
delay crossing a threshold inside the [min, max] observed range, and then
yields — halving once and backing off to minimum if congestion persists
through an inference phase. LEDBAT's spiritual ancestor, included in the
Linux kernel as ``lp``.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class TcpLp(CongestionControl):
    """Delay-threshold scavenger (kernel ``tcp_lp``)."""

    name = "lp"

    DELTA = 0.15  # threshold position within [min, max] delay range
    INFERENCE_RTTS = 3.0  # how long congestion must persist before yielding

    def __init__(self) -> None:
        self.owd_min = float("inf")
        self.owd_max = 0.0
        self._congested_since = -1.0
        self._last_backoff = -1.0

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt > 0:
            # one-way delay proxied by RTT (symmetric reverse path here)
            self.owd_min = min(self.owd_min, rtt)
            self.owd_max = max(self.owd_max, rtt)
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
            return
        threshold = self.owd_min + self.DELTA * (self.owd_max - self.owd_min)
        congested = (
            rtt > 0
            and self.owd_max > self.owd_min
            and rtt > threshold
        )
        if congested:
            if self._congested_since < 0:
                self._congested_since = now
            persist = now - self._congested_since
            inference = self.INFERENCE_RTTS * max(sock.srtt_or_min, 0.01)
            if persist > inference:
                # sustained cross-traffic: get out of the way entirely
                sock.cwnd = self.MIN_CWND
                sock.ssthresh = self.MIN_CWND
            elif now - self._last_backoff > max(sock.srtt_or_min, 0.01):
                sock.cwnd = max(sock.cwnd / 2.0, self.MIN_CWND)
                self._last_backoff = now
        else:
            self._congested_since = -1.0
            self.reno_increase(sock, n_acked)

    def ssthresh(self, sock) -> float:
        return max(sock.cwnd / 2.0, self.MIN_CWND)
