"""Serving-throughput benchmark core (shared by CLI and benchmarks/).

Measures flows/sec of the Execution block two ways over the same synthetic
state stream:

- **batch=1**: N independent :class:`SageAgent` instances, one forward per
  flow per tick — the pre-serving deployment model;
- **batched**: one :class:`PolicyServer` with N connected flows, one
  ``(N, 69)`` forward per tick.

Both run the policy in deterministic mode so the decision streams are
directly comparable (batched vs serial agree to float rounding; the bitwise
batch-composition guarantee is enforced by ``tests/test_serve.py``).
Optionally also runs the end-to-end multi-flow network harness.

``tiers=True`` adds the tiered-router section: a distilled symbolic
controller is fit on states the policy actually visits (short rollouts in
Set-1-style environments), the pooled states are replayed as a realistic
N-flow serving stream, and the same stream is timed through an NN-only
server and a tiered server. The section reports the symbolic hit-rate,
per-tier latency percentiles, and — via a small two-participant league —
the *fidelity* of tiered serving: the winning-rate delta vs NN-only.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.collector.gr_unit import STATE_DIM
from repro.core.agent import SageAgent
from repro.core.networks import NetworkConfig, SagePolicy
from repro.serve.engine import PolicyServer, ServeConfig
from repro.serve.harness import (
    MultiFlowConfig,
    WorkloadServeConfig,
    run_served_flows,
    run_served_workload,
)


def run_serve_bench(
    flows: int = 64,
    ticks: int = 200,
    seed: int = 0,
    net_config: Optional[NetworkConfig] = None,
    with_harness: bool = True,
    harness_duration: float = 3.0,
    tiers: bool = False,
    tiers_kwargs: Optional[dict] = None,
    workload: bool = False,
    workload_config: Optional[WorkloadServeConfig] = None,
) -> dict:
    """Benchmark batched serving against N batch=1 agents; returns a report.

    ``tiers=True`` appends the tiered-router section (see
    :func:`run_tiered_bench`); ``tiers_kwargs`` forwards its knobs.
    ``workload=True`` appends the open-loop section (see
    :func:`run_workload_bench`).
    """
    cfg = net_config if net_config is not None else NetworkConfig()
    rng = np.random.default_rng(seed)
    policy = SagePolicy(cfg, rng)
    states = rng.standard_normal((ticks, flows, STATE_DIM))

    # -- batch=1 baseline: N independent SageAgents ---------------------
    agents = [
        SageAgent(policy, deterministic=True, seed=seed + i) for i in range(flows)
    ]
    for agent in agents:
        agent.reset()
    serial_ratios = np.empty((ticks, flows))
    t0 = time.perf_counter()
    for t in range(ticks):
        for i, agent in enumerate(agents):
            serial_ratios[t, i] = agent.act(states[t, i])
    serial_s = time.perf_counter() - t0

    # -- batched: one PolicyServer, one (N, 69) forward per tick ---------
    server = PolicyServer(
        policy, ServeConfig(deterministic=True, tick_budget=None, seed=seed)
    )
    for i in range(flows):
        server.connect(i)
    batched_ratios = np.empty((ticks, flows))
    t0 = time.perf_counter()
    for t in range(ticks):
        for i in range(flows):
            server.submit(i, states[t, i])
        decisions = server.tick()
        for i in range(flows):
            batched_ratios[t, i] = decisions[i].ratio
    batched_s = time.perf_counter() - t0

    flow_ticks = flows * ticks
    max_diff = float(np.abs(serial_ratios - batched_ratios).max())
    snapshot = server.metrics.snapshot()
    result = {
        "flows": flows,
        "ticks": ticks,
        "gru_dim": cfg.gru_dim,
        "serial": {
            "elapsed_s": round(serial_s, 4),
            "flows_per_s": round(flow_ticks / serial_s, 1),
            "tick_ms": round(serial_s / ticks * 1e3, 4),
        },
        "batched": {
            "elapsed_s": round(batched_s, 4),
            "flows_per_s": round(flow_ticks / batched_s, 1),
            "tick_ms": round(batched_s / ticks * 1e3, 4),
            "latency_p50_ms": snapshot["latency_p50_ms"],
            "latency_p99_ms": snapshot["latency_p99_ms"],
            "batch_hist": snapshot["batch_hist"],
        },
        "speedup": round(serial_s / batched_s, 3),
        "serial_batched_max_abs_diff": max_diff,
        "serial_batched_allclose": bool(
            np.allclose(serial_ratios, batched_ratios, rtol=1e-7, atol=1e-9)
        ),
    }

    if with_harness:
        hcfg = MultiFlowConfig(
            n_flows=min(flows, 8),
            bw_mbps=48.0,
            min_rtt=0.04,
            buffer_bdp=2.0,
            duration=harness_duration,
        )
        hres = run_served_flows(policy, hcfg)
        result["harness"] = {
            "n_flows": hcfg.n_flows,
            "duration_s": hcfg.duration,
            "aggregate_throughput_mbps": round(
                hres.aggregate_throughput_bps / 1e6, 3
            ),
            "jain_fairness": round(hres.jain_fairness, 4),
            "fallback_rate": hres.metrics["fallback_rate"],
            "latency_p99_ms": hres.metrics["latency_p99_ms"],
        }

    if tiers:
        result["tiers_bench"] = run_tiered_bench(
            flows=flows, ticks=ticks, seed=seed, net_config=cfg,
            policy=policy, **(tiers_kwargs or {}),
        )

    if workload:
        result["workload"] = run_workload_bench(
            policy, config=workload_config, seed=seed
        )
    return result


def run_workload_bench(
    policy: SagePolicy,
    config: Optional[WorkloadServeConfig] = None,
    seed: int = 0,
) -> dict:
    """Serve an open-loop workload end to end; returns the FCT report.

    The headline number is ``arrivals_per_s_wall``: flow arrivals processed
    per wall-clock second through the full path (topology simulation + GR
    feature extraction + batched policy forward + cwnd enforcement).
    """
    cfg = config if config is not None else WorkloadServeConfig(seed=seed)
    t0 = time.perf_counter()
    res = run_served_workload(policy, cfg)
    wall = time.perf_counter() - t0
    fct = res.metrics.get("fct", {})
    return {
        "topology": cfg.topology,
        "arrival_rate": cfg.arrival_rate,
        "duration_s": cfg.duration,
        "mean_size_bytes": cfg.mean_size_bytes,
        "seed": cfg.seed,
        "n_sessions": res.n_sessions,
        "n_requests": res.n_requests,
        "peak_concurrent": res.peak_concurrent,
        "n_completed": fct.get("n_completed", 0),
        "n_abandoned": fct.get("n_abandoned", 0),
        "fct_p50_ms": fct.get("p50_ms", 0.0),
        "fct_p95_ms": fct.get("p95_ms", 0.0),
        "fct_p99_ms": fct.get("p99_ms", 0.0),
        "mean_slowdown": res.fct.mean_slowdown,
        "elapsed_s": round(wall, 4),
        "arrivals_per_s_wall": round(res.n_requests / wall, 1),
    }


# ---------------------------------------------------------------------------
# tiered-router section
# ---------------------------------------------------------------------------


def _collect_bench_pool(policy: SagePolicy, seed: int, duration: float):
    """Short policy rollouts in Set-1-style envs: the distillation pool."""
    from repro.collector.environments import set1_environments
    from repro.collector.pool import PolicyPool
    from repro.collector.rollout import run_policy

    envs = set1_environments(
        bws=(24.0, 48.0), rtts=(0.04,), buffers=(2.0,),
        step_ms=(1.0,), duration=duration,
    )
    pool = PolicyPool()
    agent = SageAgent(policy, deterministic=True, seed=seed)
    for env in envs:
        pool.add_rollout(run_policy(env, agent))
    return pool


def _replay_stream(pool, flows: int, ticks: int) -> np.ndarray:
    """Slice the pool's raw states into a ``(ticks, flows, 69)`` stream.

    Each flow reads a contiguous window (wrapping) of the concatenated
    pool states, so per-flow streams keep realistic temporal structure.
    """
    concat = np.concatenate(
        [np.asarray(t.states, dtype=np.float64) for t in pool.trajectories]
    )
    m = len(concat)
    stream = np.empty((ticks, flows, STATE_DIM))
    for i in range(flows):
        start = (i * max(m // flows, 1)) % m
        idx = (start + np.arange(ticks)) % m
        stream[:, i, :] = concat[idx]
    return stream


def _time_stream(server: PolicyServer, stream: np.ndarray) -> float:
    """Serve a ``(ticks, flows)`` stream; returns elapsed seconds."""
    ticks, flows = stream.shape[:2]
    for i in range(flows):
        server.connect(i)
    t0 = time.perf_counter()
    for t in range(ticks):
        for i in range(flows):
            server.submit(i, stream[t, i])
        server.tick()
    return time.perf_counter() - t0


def run_tiered_bench(
    flows: int = 64,
    ticks: int = 200,
    seed: int = 0,
    net_config: Optional[NetworkConfig] = None,
    policy: Optional[SagePolicy] = None,
    target_coverage: float = 0.98,
    refresh_every: int = 32,
    max_depth: int = 10,
    pool_duration: float = 8.0,
    with_league: bool = True,
    league_duration: float = 10.0,
) -> dict:
    """Benchmark the tiered router against NN-only serving; returns a report.

    The distilled controller is fit on states the policy itself visits
    (``pool_duration``-second rollouts); the serving stream replays those
    pooled states, so the symbolic tier is exercised on its own traffic
    distribution — the deployment the tiered router is built for.
    """
    from repro.distill import DistillConfig, fit_distilled

    cfg = net_config if net_config is not None else NetworkConfig()
    if policy is None:
        policy = SagePolicy(cfg, np.random.default_rng(seed))

    pool = _collect_bench_pool(policy, seed, pool_duration)
    distilled, fit_report = fit_distilled(
        policy,
        pool,
        DistillConfig(
            target_coverage=target_coverage,
            refresh_every=refresh_every,
            max_depth=max_depth,
        ),
    )

    stream = _replay_stream(pool, flows, ticks)
    serve_cfg = ServeConfig(deterministic=True, tick_budget=None, seed=seed)

    nn_server = PolicyServer(policy, serve_cfg)
    nn_s = _time_stream(nn_server, stream)

    tiered_server = PolicyServer(policy, serve_cfg, distilled=distilled)
    tiered_s = _time_stream(tiered_server, stream)
    snap = tiered_server.metrics.snapshot()

    flow_ticks = flows * ticks
    result = {
        "distill": fit_report,
        "nn_only": {
            "elapsed_s": round(nn_s, 4),
            "flows_per_s": round(flow_ticks / nn_s, 1),
            "tick_ms": round(nn_s / ticks * 1e3, 4),
        },
        "tiered": {
            "elapsed_s": round(tiered_s, 4),
            "flows_per_s": round(flow_ticks / tiered_s, 1),
            "tick_ms": round(tiered_s / ticks * 1e3, 4),
            "tiers": snap["tiers"],
            "sources": snap["sources"],
        },
        "speedup_vs_nn": round(nn_s / tiered_s, 3),
        "symbolic_hit_rate": snap["symbolic_hit_rate"],
    }

    if with_league:
        result["league_fidelity"] = _league_fidelity(
            policy, distilled, seed, league_duration
        )
    return result


def _league_fidelity(
    policy: SagePolicy, distilled, seed: int, duration: float
) -> dict:
    """Winning-rate delta of tiered serving vs NN-only in one small league."""
    from repro.collector.environments import set1_environments
    from repro.evalx.leagues import Participant, run_league

    envs = set1_environments(
        bws=(32.0,), rtts=(0.03, 0.05), buffers=(1.5,),
        step_ms=(1.0,), duration=duration,
    )
    participants = [
        Participant.from_served(
            policy, name="sage-nn", deterministic=True, seed=seed
        ),
        Participant.from_served(
            policy, name="sage-tiered", deterministic=True, seed=seed,
            distilled=distilled,
        ),
    ]
    league = run_league(participants, set1=envs, set2=envs[:1])
    nn_rate = league.set1_rates.get("sage-nn", 0.0)
    tiered_rate = league.set1_rates.get("sage-tiered", 0.0)
    return {
        "nn_winning_rate": round(nn_rate, 4),
        "tiered_winning_rate": round(tiered_rate, 4),
        "delta_points": round(abs(nn_rate - tiered_rate) * 100.0, 3),
    }


def format_report(result: dict) -> str:
    lines = [
        f"=== serve-bench: {result['flows']} flows x {result['ticks']} ticks "
        f"(gru_dim={result['gru_dim']}) ===",
        f"{'mode':>10} {'elapsed_s':>10} {'flows/s':>10} {'tick_ms':>9}",
    ]
    for mode in ("serial", "batched"):
        row = result[mode]
        lines.append(
            f"{mode:>10} {row['elapsed_s']:>10.3f} "
            f"{row['flows_per_s']:>10.0f} {row['tick_ms']:>9.3f}"
        )
    lines.append(
        f"speedup: {result['speedup']:.2f}x   "
        f"batched p50/p99: {result['batched']['latency_p50_ms']:.3f}/"
        f"{result['batched']['latency_p99_ms']:.3f} ms   "
        f"outputs allclose: {result['serial_batched_allclose']}"
    )
    if "harness" in result:
        h = result["harness"]
        lines.append(
            f"harness ({h['n_flows']} flows, {h['duration_s']:g}s): "
            f"{h['aggregate_throughput_mbps']:.1f} Mbps aggregate, "
            f"Jain {h['jain_fairness']:.3f}, "
            f"fallback rate {h['fallback_rate']:.3f}"
        )
    if "tiers_bench" in result:
        tb = result["tiers_bench"]
        lines.append(
            f"--- tiered router (tree: {tb['distill']['n_leaves']} leaves, "
            f"depth {tb['distill']['depth']}) ---"
        )
        for mode in ("nn_only", "tiered"):
            row = tb[mode]
            lines.append(
                f"{mode:>10} {row['elapsed_s']:>10.3f} "
                f"{row['flows_per_s']:>10.0f} {row['tick_ms']:>9.3f}"
            )
        tier_bits = []
        for tier, stats in tb["tiered"]["tiers"].items():
            tier_bits.append(
                f"{tier}: {stats['decisions']} "
                f"(p50/p99 {stats['latency_p50_ms']:.3f}/"
                f"{stats['latency_p99_ms']:.3f} ms)"
            )
        lines.append(
            f"speedup vs NN-only: {tb['speedup_vs_nn']:.2f}x   "
            f"symbolic hit-rate: {tb['symbolic_hit_rate'] * 100:.1f}%"
        )
        lines.append("per-tier: " + "   ".join(tier_bits))
        if "league_fidelity" in tb:
            lf = tb["league_fidelity"]
            lines.append(
                f"league fidelity: tiered {lf['tiered_winning_rate'] * 100:.2f}% "
                f"vs NN-only {lf['nn_winning_rate'] * 100:.2f}% "
                f"(delta {lf['delta_points']:.2f} points)"
            )
    if "workload" in result:
        w = result["workload"]
        lines.append(
            f"--- open-loop workload ({w['topology']}, "
            f"{w['arrival_rate']:g}/s x {w['duration_s']:g}s) ---"
        )
        lines.append(
            f"{w['n_requests']} flows ({w['n_completed']} completed, "
            f"{w['n_abandoned']} abandoned, peak {w['peak_concurrent']} "
            f"concurrent)   FCT p50/p95/p99: {w['fct_p50_ms']:.1f}/"
            f"{w['fct_p95_ms']:.1f}/{w['fct_p99_ms']:.1f} ms"
        )
        lines.append(
            f"served {w['arrivals_per_s_wall']:.0f} arrivals/s wall-clock "
            f"({w['elapsed_s']:.2f}s elapsed)"
        )
    return "\n".join(lines)


def write_report(result: dict, path) -> None:
    Path(path).write_text(json.dumps(result, indent=1) + "\n")
