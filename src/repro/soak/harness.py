"""The continuous-chaos soak harness: ``repro soak``.

Runs the real pipeline — collect -> verify -> train -> serve — in rounds
for a wall-clock budget, with a fresh seed-deterministic
:class:`~repro.chaos.process.FaultProcess` armed every round, so faults
keep arriving across every site for as long as the soak runs. Each fired
fault is recorded with its detection latency and time-to-recovery; a set
of invariants is asserted continuously (finite served actions, a clean
store after verify, a monotone journal, snapshot/restore bit-identity,
poisoned hot-reloads rejected); and the final artifacts are optionally
compared against a fault-free twin of the same seeds — the store manifest
and the training checkpoint must come out **bit-identical**, faults or no
faults.

Structure of one round ``r``:

- arm ``FaultProcess(seed + r)`` over horizons matched to the round's
  actual work (collector task count, this round's training steps, the
  serving tick count, ...);
- ``collect``: :func:`repro.pipeline.stages._stage_collect` under chaos,
  then ``_stage_verify`` (quarantine + byte-identical repair), then a
  chaos-free audit that must come back clean;
- ``train``: ``_stage_train`` resumes the shared checkpoint and advances
  it ``steps_per_round`` steps under chaos (NaN/spike faults roll back
  through the DivergenceGuard and replay clean);
- ``serve``: a chaos'd :class:`~repro.serve.engine.PolicyServer` tick
  loop (every decision must stay finite), a snapshot/restore equality
  exercise, a hot-reload exercise (good checkpoint accepted, poisoned
  copy rejected by shadow validation), and a served open-loop workload
  with link-flap / AQM-stall / burst faults live.

The stage functions are called directly (not through the
:class:`~repro.pipeline.supervisor.Supervisor`) because a soak *wants*
to redo collect/verify every round; the supervisor's resume checks would
short-circuit them after round 0.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.chaos.process import DEFAULT_RATES, FaultProcess
from repro.soak.report import (
    SOAK_SCHEMA_VERSION,
    FaultObserver,
    aggregate_faults,
    evaluate_slos,
    write_soak_report,
)

__all__ = ["SoakConfig", "run_soak"]

PHASES = ("collect", "train", "serve")

#: soak overrides for fault parameters: keep the hang shorter than a round
#: but longer than the collector watchdog, and the serve stall sub-tick
_SOAK_PARAMS = {"collector.hang": 4.0, "serve.slow": 0.01}

#: sites with no recovery path to verify, excluded from the default soak
#: mix: a mis-scaled batch below the DivergenceGuard's thresholds is a
#: perturbation the guard *intentionally tolerates* (it only rolls back
#: divergence), so the fault trains in and the checkpoint legitimately —
#: and permanently — differs from a fault-free run's. Opt back in with
#: ``--rates train.spike=...`` (and expect the identity check to fail).
_UNRECOVERED_SITES = ("train.spike",)


@dataclasses.dataclass
class SoakConfig:
    """Everything one soak run needs; JSON-echoed into ``BENCH_soak.json``."""

    workdir: str
    #: wall-clock budget — rounds keep starting until it is spent
    duration_s: float = 30.0
    min_rounds: int = 1
    max_rounds: int = 64
    seed: int = 0
    phases: Tuple[str, ...] = PHASES
    #: per-site fault rates (None -> chaos defaults), scaled by rate_scale
    rates: Optional[Dict[str, float]] = None
    rate_scale: float = 1.0
    # pipeline shape (kept mini so a round is seconds, not minutes)
    scale: str = "mini"
    schemes: Tuple[str, ...] = ("cubic",)
    shard_bytes: int = 1 << 20
    steps_per_round: int = 6
    max_task_seconds: float = 2.0
    # serve phase shape
    serve_flows: int = 4
    serve_ticks: int = 40
    workload_duration: float = 1.0
    arrival_rate: float = 40.0
    # SLOs
    slo_mttr_p50_s: float = 30.0
    slo_mttr_p99_s: float = 120.0
    slo_min_sites: int = 0
    #: rerun the same rounds fault-free and require bit-identical artifacts
    check_identity: bool = True

    def __post_init__(self) -> None:
        for phase in self.phases:
            if phase not in PHASES:
                raise ValueError(
                    f"unknown soak phase {phase!r}; valid: {PHASES}"
                )
        if not self.phases:
            raise ValueError("soak needs at least one phase")
        if self.duration_s < 0 or self.min_rounds < 1:
            raise ValueError("duration_s must be >= 0 and min_rounds >= 1")
        if self.max_rounds < self.min_rounds:
            raise ValueError("max_rounds must be >= min_rounds")
        if self.rate_scale <= 0 or not np.isfinite(self.rate_scale):
            raise ValueError("rate_scale must be finite and positive")

    def effective_rates(self) -> Dict[str, float]:
        if self.rates is None:
            base = {
                site: (0.0 if site in _UNRECOVERED_SITES else rate)
                for site, rate in DEFAULT_RATES.items()
            }
        else:
            base = dict(self.rates)
        return {site: rate * self.rate_scale for site, rate in base.items()}

    def to_json(self) -> Dict:
        d = dataclasses.asdict(self)
        d["phases"] = list(self.phases)
        d["schemes"] = list(self.schemes)
        return d


# --------------------------------------------------------------------------
# internal plumbing
# --------------------------------------------------------------------------


def _pipe_config(cfg: SoakConfig, root: Path, n_steps: int):
    from repro.pipeline.stages import PipelineConfig

    return PipelineConfig(
        workdir=str(root),
        scale=cfg.scale,
        schemes=cfg.schemes,
        workers=1,
        shard_bytes=cfg.shard_bytes,
        base_seed=cfg.seed,
        max_task_seconds=cfg.max_task_seconds,
        n_steps=n_steps,
        train_seed=cfg.seed,
    )


def _load_serving_policy(cfg: SoakConfig, pipe_cfg):
    """The trained policy if a checkpoint exists, else a seed-0 init."""
    from repro.core.networks import SagePolicy
    from repro.pipeline.stages import _net_config

    policy = SagePolicy(_net_config(pipe_cfg), np.random.default_rng(0))
    if pipe_cfg.checkpoint_path.exists():
        with np.load(pipe_cfg.checkpoint_path, allow_pickle=False) as data:
            policy.load_state_dict(
                {
                    key[len("policy/"):]: data[key]
                    for key in data.files
                    if key.startswith("policy/")
                }
            )
    return policy


def _serve_states(cfg: SoakConfig, round_index: int, ticks: int):
    """Deterministic per-round raw GR states, (ticks, flows, STATE_DIM)."""
    from repro.collector.gr_unit import STATE_DIM

    rng = np.random.default_rng([cfg.seed & 0xFFFFFFFF, 0x50AC, round_index])
    return np.abs(rng.standard_normal((ticks, cfg.serve_flows, STATE_DIM)))


def _drive(server, states, start=0, stop=None) -> List[Tuple]:
    """Tick a server over a state block; return the flat decision stream."""
    stop = states.shape[0] if stop is None else stop
    out: List[Tuple] = []
    for t in range(start, stop):
        for flow in range(states.shape[1]):
            server.submit(flow, states[t, flow], cwnd=20.0)
        decisions = server.tick()
        for flow in sorted(decisions):
            d = decisions[flow]
            out.append((t, flow, d.ratio, d.source))
    return out


class _Soak:
    """One soak run's mutable state; ``run()`` produces the report dict."""

    def __init__(self, cfg: SoakConfig) -> None:
        self.cfg = cfg
        self.root = Path(cfg.workdir)
        self.observer = FaultObserver()
        self.journal: List[Dict] = []
        self.violations: List[Dict] = []
        self.invariants_checked = [
            "finite-served-actions",
            "store-clean-after-verify",
            "monotone-journal",
            "snapshot-restore-bit-identity",
            "poisoned-reload-rejected",
        ]
        self._steps_seen = 0

    # -- bookkeeping ----------------------------------------------------
    def note(self, round_index: int, phase: str, **detail) -> None:
        self.journal.append(
            {
                "index": len(self.journal),
                "round": round_index,
                "phase": phase,
                "at": time.time(),
                **detail,
            }
        )

    def violate(self, invariant: str, detail: str) -> None:
        self.violations.append({"invariant": invariant, "detail": detail})

    def _save_journal(self, root: Path) -> None:
        path = root / "soak_journal.json"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.journal, indent=1) + "\n")
        os.replace(tmp, path)

    # -- chaos ----------------------------------------------------------
    def _injector(self, round_index: int, pipe_cfg):
        from repro.pipeline.stages import _expected_tasks

        cfg = self.cfg
        process = FaultProcess(
            seed=cfg.seed + round_index,
            rates=cfg.effective_rates(),
            params=_SOAK_PARAMS,
        )
        wl_ticks = int(
            (cfg.workload_duration + 1.0) / pipe_cfg.tick
        )
        horizons = {
            "collector": len(_expected_tasks(pipe_cfg)),
            "train": pipe_cfg.n_steps,
            "serve": max(cfg.serve_ticks, wl_ticks),
            "workload": int(cfg.arrival_rate * cfg.workload_duration) + 1,
        }
        return process.injector(horizons)

    # -- phases ----------------------------------------------------------
    def _run_collect(self, r: int, pipe_cfg, injector) -> None:
        from repro.datastore.manifest import verify_store
        from repro.pipeline.stages import _stage_collect, _stage_verify

        ctx = {"config": pipe_cfg, "chaos": injector}
        info = _stage_collect(ctx)
        # datastore corruption planted during collect is only *found* by
        # the verify audit -> keep those faults open until it has run
        self.observer.observe(injector, "collect-stage-complete",
                              defer=("datastore.",))
        verify_info = _stage_verify(ctx)
        self.observer.observe(injector, "verify-stage-complete")
        self.observer.resolve("datastore.", "verify-repair-complete")
        audit = verify_store(pipe_cfg.store_dir, quarantine=False)
        if not audit.clean:
            self.violate(
                "store-clean-after-verify",
                f"round {r}: post-repair audit found problems: "
                + audit.format(),
            )
        self.note(
            r, "collect",
            n_trajectories=info["n_trajectories"],
            n_retried=info["n_retried"],
            n_crashes=info["n_crashes"],
            n_timeouts=info["n_timeouts"],
            quarantined=len(verify_info.get("quarantined", [])),
        )

    def _run_train(self, r: int, pipe_cfg, injector) -> None:
        from repro.pipeline.stages import _stage_train

        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            info = _stage_train({"config": pipe_cfg, "chaos": injector})
        self.observer.observe(injector, "train-stage-complete")
        steps = int(info["steps_done"])
        if steps < self._steps_seen:
            self.violate(
                "monotone-journal",
                f"round {r}: trainer steps went backwards "
                f"({self._steps_seen} -> {steps})",
            )
        self._steps_seen = steps
        self.note(r, "train", steps_done=steps,
                  rollbacks=info["rollbacks"])

    def _run_serve(self, r: int, pipe_cfg, injector) -> None:
        from repro.serve.engine import PolicyServer, ServeConfig

        cfg = self.cfg
        policy = _load_serving_policy(cfg, pipe_cfg)
        serve_cfg = ServeConfig(
            deterministic=True, tick_budget=None, seed=cfg.seed
        )
        states = _serve_states(cfg, r, cfg.serve_ticks)
        server = PolicyServer(policy, serve_cfg, chaos=injector)
        for flow in range(cfg.serve_flows):
            server.connect(flow)
        n_bad = 0
        for t in range(cfg.serve_ticks):
            for flow in range(cfg.serve_flows):
                server.submit(flow, states[t, flow], cwnd=20.0)
            decisions = server.tick()
            for flow, decision in decisions.items():
                if not np.isfinite(decision.ratio) or decision.ratio <= 0:
                    n_bad += 1
                    self.violate(
                        "finite-served-actions",
                        f"round {r} tick {t}: flow {flow} served "
                        f"ratio {decision.ratio!r} "
                        f"(source={decision.source})",
                    )
            # serve.* faults are masked within the very tick they fire
            # (fallback ratio served), so each tick is a recovery boundary
            self.observer.observe(injector, f"serve-tick-{t}")
        self.note(
            r, "serve", ticks=cfg.serve_ticks, bad_decisions=n_bad,
            sources=dict(server.metrics.sources),
        )
        self._exercise_snapshot_restore(r, policy, serve_cfg)
        if pipe_cfg.checkpoint_path.exists():
            self._exercise_hot_reload(r, server, pipe_cfg)
        self._run_workload(r, policy, injector)

    def _exercise_snapshot_restore(self, r: int, policy, serve_cfg) -> None:
        """Kill-and-resume equivalence: a restored server must emit the
        same decision stream as one that was never interrupted.

        Runs on chaos-free twins — a shared injector would desynchronize
        them by design (serve faults are keyed to each server's own tick
        counter), which is a property of the chaos plan, not of recovery.
        """
        from repro.serve.engine import PolicyServer

        cfg = self.cfg
        ticks = max(4, min(cfg.serve_ticks, 8))
        cut = ticks // 2
        states = _serve_states(cfg, r + 10_000, ticks)

        straight = PolicyServer(policy, serve_cfg)
        resumed = PolicyServer(policy, serve_cfg)
        for flow in range(cfg.serve_flows):
            straight.connect(flow)
            resumed.connect(flow)
        want = _drive(straight, states)
        got = _drive(resumed, states, stop=cut)
        snap = self.root / f"soak_snapshot_r{r}.npz"
        resumed.snapshot(snap)
        fresh = PolicyServer(policy, serve_cfg)
        fresh.restore(snap)
        got += _drive(fresh, states, start=cut)
        if got != want:
            first = next(
                (i for i, (a, b) in enumerate(zip(want, got)) if a != b),
                min(len(want), len(got)),
            )
            self.violate(
                "snapshot-restore-bit-identity",
                f"round {r}: restored decision stream diverged at "
                f"record {first} of {len(want)}",
            )
        for path in (snap, Path(str(snap) + ".crc32")):
            if path.exists():
                path.unlink()
        self.note(r, "serve", exercise="snapshot-restore",
                  records=len(want), identical=got == want)

    def _exercise_hot_reload(self, r: int, server, pipe_cfg) -> None:
        """A good checkpoint hot-swaps in; a NaN-poisoned copy must be
        rejected by shadow validation with the old policy still serving."""
        good = server.reload_policy(pipe_cfg.checkpoint_path)
        if not good["accepted"]:
            self.violate(
                "poisoned-reload-rejected",
                f"round {r}: valid checkpoint refused: {good['reason']}",
            )
        poisoned = self.root / f"soak_poisoned_r{r}.npz"
        with np.load(pipe_cfg.checkpoint_path, allow_pickle=False) as data:
            payload = {key: data[key] for key in data.files}
        for key in payload:
            if key.startswith("policy/"):
                arr = payload[key].astype(np.float64).copy()
                arr.flat[0] = np.nan
                payload[key] = arr
                break
        np.savez_compressed(poisoned, **payload)
        bad = server.reload_policy(poisoned)
        if bad["accepted"]:
            self.violate(
                "poisoned-reload-rejected",
                f"round {r}: NaN-poisoned checkpoint was accepted",
            )
        poisoned.unlink()
        probe = _serve_states(self.cfg, r + 20_000, 1)
        for flow in range(self.cfg.serve_flows):
            server.submit(flow, probe[0, flow], cwnd=20.0)
        decisions = server.tick()
        for flow, decision in decisions.items():
            if not np.isfinite(decision.ratio) or decision.ratio <= 0:
                self.violate(
                    "poisoned-reload-rejected",
                    f"round {r}: serving broken after rejected reload "
                    f"(flow {flow} ratio {decision.ratio!r})",
                )
        self.note(r, "serve", exercise="hot-reload",
                  good_accepted=bool(good["accepted"]),
                  poisoned_accepted=bool(bad["accepted"]))

    def _run_workload(self, r: int, policy, injector) -> None:
        from repro.serve.engine import ServeConfig
        from repro.serve.harness import WorkloadServeConfig, run_served_workload

        cfg = self.cfg
        wl = WorkloadServeConfig(
            arrival_rate=cfg.arrival_rate,
            duration=cfg.workload_duration,
            drain=1.0,
            seed=cfg.seed + r,
        )
        with np.errstate(invalid="ignore", over="ignore"):
            result = run_served_workload(
                policy, wl,
                serve_config=ServeConfig(
                    deterministic=True, tick_budget=None, seed=cfg.seed
                ),
                chaos=injector,
            )
        self.observer.observe(injector, "workload-run-complete")
        if result.metrics["invalid_actions"]:
            self.violate(
                "finite-served-actions",
                f"round {r}: workload served "
                f"{result.metrics['invalid_actions']} invalid action(s)",
            )
        self.note(
            r, "workload", n_sessions=result.n_sessions,
            n_requests=result.n_requests,
            flapped_links=list(result.flapped_links),
        )

    # -- the loop --------------------------------------------------------
    def run_rounds(
        self, root: Path, with_chaos: bool, rounds_exact: Optional[int] = None
    ) -> int:
        cfg = self.cfg
        root.mkdir(parents=True, exist_ok=True)
        started = time.monotonic()
        r = 0
        while True:
            if rounds_exact is not None:
                if r >= rounds_exact:
                    break
            elif r >= cfg.max_rounds:
                break
            elif r >= cfg.min_rounds and (
                time.monotonic() - started >= cfg.duration_s
            ):
                break
            pipe_cfg = _pipe_config(
                cfg, root, n_steps=(r + 1) * cfg.steps_per_round
            )
            injector = self._injector(r, pipe_cfg) if with_chaos else None
            if "collect" in cfg.phases:
                self._run_collect(r, pipe_cfg, injector)
            if "train" in cfg.phases:
                if not pipe_cfg.store_dir.exists():
                    raise RuntimeError(
                        "soak train phase needs a store; include the "
                        "collect phase or point workdir at one"
                    )
                self._run_train(r, pipe_cfg, injector)
            if "serve" in cfg.phases:
                self._run_serve(r, pipe_cfg, injector)
            self._check_monotone()
            self._save_journal(root)
            r += 1
        return r

    def _check_monotone(self) -> None:
        indices = [entry["index"] for entry in self.journal]
        if indices != sorted(set(indices)):
            self.violate(
                "monotone-journal",
                "journal indices are not strictly increasing",
            )


# --------------------------------------------------------------------------
# identity twin
# --------------------------------------------------------------------------


def _checkpoint_arrays(path: Path) -> Dict[str, bytes]:
    with np.load(path, allow_pickle=False) as data:
        return {key: data[key].tobytes() for key in data.files}


def _compare_artifacts(chaos_root: Path, clean_root: Path) -> Dict:
    """Bit-compare the soaked artifacts against the fault-free twin's.

    The checkpoint compares per-array (``.npz`` container bytes embed zip
    timestamps); the manifest compares as text.
    """
    out: Dict = {"checked": True}
    chaos_manifest = chaos_root / "store" / "manifest.json"
    clean_manifest = clean_root / "store" / "manifest.json"
    if chaos_manifest.exists() or clean_manifest.exists():
        out["store_manifest"] = (
            chaos_manifest.exists()
            and clean_manifest.exists()
            and chaos_manifest.read_bytes() == clean_manifest.read_bytes()
        )
    chaos_ckpt = chaos_root / "checkpoint.npz"
    clean_ckpt = clean_root / "checkpoint.npz"
    if chaos_ckpt.exists() or clean_ckpt.exists():
        out["train_checkpoint"] = (
            chaos_ckpt.exists()
            and clean_ckpt.exists()
            and _checkpoint_arrays(chaos_ckpt)
            == _checkpoint_arrays(clean_ckpt)
        )
    return out


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------


def run_soak(cfg: SoakConfig, out_path=None) -> Dict:
    """Run the soak; return (and optionally write) the BENCH report.

    The report carries per-site fault counts, MTTR/detection p50/p99, the
    full fault log, every invariant violation, the artifact-identity
    verdict, and a pass/fail per SLO. ``passed`` is the overall verdict —
    the CLI exits non-zero when it is false.
    """
    started = time.monotonic()
    soak = _Soak(cfg)
    chaos_root = soak.root / "pipe"
    rounds = soak.run_rounds(chaos_root, with_chaos=True)

    identity: Dict = {"checked": False}
    if cfg.check_identity:
        clean_root = soak.root / "clean"
        if clean_root.exists():
            shutil.rmtree(clean_root)
        twin = _Soak(cfg)
        twin.run_rounds(clean_root, with_chaos=False, rounds_exact=rounds)
        identity = _compare_artifacts(chaos_root, clean_root)
        for name, same in identity.items():
            if name != "checked" and not same:
                soak.violate(
                    "artifact-identity",
                    f"{name} differs from the fault-free twin",
                )
        soak.invariants_checked.append("artifact-identity")

    faults = aggregate_faults(soak.observer.records)
    slos = evaluate_slos(
        faults, soak.violations,
        mttr_p50_limit_s=cfg.slo_mttr_p50_s,
        mttr_p99_limit_s=cfg.slo_mttr_p99_s,
        min_sites=cfg.slo_min_sites,
    )
    report = {
        "schema_version": SOAK_SCHEMA_VERSION,
        "config": cfg.to_json(),
        "rounds": rounds,
        "wall_s": round(time.monotonic() - started, 3),
        "faults": faults,
        "fault_log": [
            {k: v for k, v in record.items() if k != "fired_at"}
            for record in soak.observer.records
        ],
        "invariants": {
            "checked": soak.invariants_checked,
            "violations": soak.violations,
        },
        "identity": identity,
        "slos": slos,
        "passed": bool(slos["passed"]),
    }
    if out_path is not None:
        write_soak_report(report, out_path)
    return report
