"""The distilled symbolic controller: fit, calibrate, persist, evaluate.

:class:`DistilledPolicy` wraps a fitted :class:`~repro.distill.tree.
RegressionTree` with everything the serving router needs:

- a **calibrated confidence threshold** — chosen at fit time as the
  training-confidence quantile that leaves ``target_coverage`` of samples
  above it, so the symbolic tier's hit-rate is a dial, not an accident;
- a **refresh interval** — the router forces a real NN forward every
  ``refresh_every`` ticks per flow, bounding how stale the hidden-summary
  features can get;
- **.npz persistence** with a schema version and a CRC32 sidecar, the same
  tmp-then-``os.replace`` + integrity-check contract as train checkpoints:
  a crash mid-write never leaves a truncated file under the real name, and
  a corrupt file raises ``ValueError`` instead of half-loading.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.core.networks import FastPolicy, SagePolicy
from repro.distill.dataset import (
    FEATURE_DIM,
    build_distill_dataset,
    feature_names,
    hidden_summary,
)
from repro.distill.tree import RegressionTree, TreeConfig

#: bump when the .npz layout changes; loaders reject other versions
SCHEMA_VERSION = 1

_REQUIRED_KEYS = (
    "meta/schema_version", "meta/conf_threshold", "meta/refresh_every",
    "tree/feature", "tree/threshold", "tree/left", "tree/right",
    "tree/value", "tree/conf",
)


@dataclass(frozen=True)
class DistillConfig:
    """Fit + calibration knobs for :func:`fit_distilled`."""

    max_depth: int = 12
    max_leaves: int = 256
    min_leaf: int = 16
    #: fraction of training samples the calibrated gate should pass
    target_coverage: float = 0.85
    #: serving forces an NN forward every this-many ticks per flow
    refresh_every: int = 8
    max_samples: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target_coverage <= 1.0:
            raise ValueError("target_coverage must be in (0, 1]")
        if self.refresh_every < 2:
            raise ValueError("refresh_every must be >= 2")

    def tree_config(self) -> TreeConfig:
        return TreeConfig(
            max_depth=self.max_depth,
            max_leaves=self.max_leaves,
            min_leaf=self.min_leaf,
        )


class DistilledPolicy:
    """A symbolic stand-in for the NN policy's deterministic serving path."""

    def __init__(
        self,
        tree: RegressionTree,
        conf_threshold: float,
        refresh_every: int = 8,
        meta: Optional[dict] = None,
    ) -> None:
        if tree.n_features != FEATURE_DIM:
            raise ValueError(
                f"distilled tree must consume {FEATURE_DIM} features "
                f"(69 GR + hidden summary), got {tree.n_features}"
            )
        self.tree = tree
        self.conf_threshold = float(conf_threshold)
        self.refresh_every = int(refresh_every)
        self.meta = dict(meta or {})

    # ------------------------------------------------------------------
    def predict(
        self, x_norm: np.ndarray, h: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Normalized states + hidden rows -> ``(ratios, confidences)``."""
        x_norm = np.asarray(x_norm, dtype=np.float64)
        if x_norm.ndim == 1:
            x_norm = x_norm[None, :]
        feats = np.concatenate(
            [x_norm, hidden_summary(h, len(x_norm))], axis=1
        )
        values, confs = self.tree.predict(feats)
        return np.exp(values), confs

    def rules(self, max_rules: int = 0):
        return self.tree.rules(feature_names(), max_rules=max_rules)

    # ------------------------------------------------------------------
    # persistence (same atomicity/integrity contract as train checkpoints)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Atomically write the controller, with a CRC32 sidecar."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "meta/schema_version": np.array([SCHEMA_VERSION], dtype=np.int64),
            "meta/conf_threshold": np.array([self.conf_threshold]),
            "meta/refresh_every": np.array([self.refresh_every], dtype=np.int64),
            "meta/n_features": np.array([self.tree.n_features], dtype=np.int64),
            "meta/depth": np.array([self.tree.depth], dtype=np.int64),
            "meta/json": np.frombuffer(
                json.dumps(self.meta, sort_keys=True).encode("utf-8"),
                dtype=np.uint8,
            ),
            "tree/feature": self.tree.feature,
            "tree/threshold": self.tree.threshold,
            "tree/left": self.tree.left,
            "tree/right": self.tree.right,
            "tree/value": self.tree.value,
            "tree/conf": self.tree.conf,
        }
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
        os.replace(tmp, path)
        crc = 0
        with open(path, "rb") as fh:
            for block in iter(lambda: fh.read(1 << 20), b""):
                crc = zlib.crc32(block, crc)
        sidecar = path.with_name(path.name + ".crc32")
        tmp = sidecar.with_name(sidecar.name + ".tmp")
        tmp.write_text(
            json.dumps({"crc32": crc & 0xFFFFFFFF, "bytes": path.stat().st_size})
            + "\n"
        )
        os.replace(tmp, sidecar)

    @classmethod
    def load(cls, path) -> "DistilledPolicy":
        """Load and verify a :meth:`save` file; ``ValueError`` on corruption."""
        path = Path(path)
        sidecar = path.with_name(path.name + ".crc32")
        if sidecar.exists():
            expected = json.loads(sidecar.read_text())
            crc = 0
            with open(path, "rb") as fh:
                for block in iter(lambda: fh.read(1 << 20), b""):
                    crc = zlib.crc32(block, crc)
            if (
                (crc & 0xFFFFFFFF) != int(expected["crc32"])
                or path.stat().st_size != int(expected["bytes"])
            ):
                raise ValueError(
                    f"distilled checkpoint {path} fails its integrity check "
                    f"(crc/size mismatch vs {sidecar.name}); refusing to load"
                )
        try:
            data = np.load(path, allow_pickle=False)
        except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
            raise ValueError(
                f"distilled checkpoint {path} is not a valid .npz archive: "
                f"{exc}"
            ) from exc
        try:
            with data:
                keys = set(data.files)
                missing = [k for k in _REQUIRED_KEYS if k not in keys]
                if missing:
                    raise ValueError(
                        f"distilled checkpoint {path} is missing keys "
                        f"{missing}; not a distilled-controller file"
                    )
                version = int(data["meta/schema_version"][0])
                if version != SCHEMA_VERSION:
                    raise ValueError(
                        f"distilled checkpoint {path} has schema version "
                        f"{version}; this build reads version {SCHEMA_VERSION}"
                    )
                feature = np.asarray(data["tree/feature"])
                tree = RegressionTree(
                    feature=feature,
                    threshold=np.asarray(data["tree/threshold"]),
                    left=np.asarray(data["tree/left"]),
                    right=np.asarray(data["tree/right"]),
                    value=np.asarray(data["tree/value"]),
                    conf=np.asarray(data["tree/conf"]),
                    n_features=int(data["meta/n_features"][0]),
                    depth=int(data["meta/depth"][0]),
                )
                meta = {}
                if "meta/json" in keys:
                    meta = json.loads(
                        np.asarray(data["meta/json"]).tobytes().decode("utf-8")
                    )
                return cls(
                    tree=tree,
                    conf_threshold=float(data["meta/conf_threshold"][0]),
                    refresh_every=int(data["meta/refresh_every"][0]),
                    meta=meta,
                )
        except (zipfile.BadZipFile, EOFError, OSError) as exc:
            # individual member reads can still hit a truncated archive
            raise ValueError(
                f"distilled checkpoint {path} is not a valid .npz archive: "
                f"{exc}"
            ) from exc


# --------------------------------------------------------------------------
# fit + evaluate
# --------------------------------------------------------------------------


def fit_distilled(
    policy: SagePolicy,
    pool,
    config: Optional[DistillConfig] = None,
    state_mask: Optional[np.ndarray] = None,
    fast: Optional[FastPolicy] = None,
) -> Tuple[DistilledPolicy, dict]:
    """Distill ``policy`` into a symbolic controller on ``pool``'s states.

    Returns ``(distilled, report)``; the report records dataset size, tree
    shape, the calibrated threshold's realized training coverage, and
    training-set imitation error.
    """
    cfg = config if config is not None else DistillConfig()
    fp = fast if fast is not None else FastPolicy(policy)
    x, y = build_distill_dataset(
        fp, pool, state_mask=state_mask, max_samples=cfg.max_samples
    )
    tree = RegressionTree.fit(x, y, cfg.tree_config())
    values, confs = tree.predict(x)
    if cfg.target_coverage >= 1.0:
        threshold = float(confs.min())
    else:
        threshold = float(np.quantile(confs, 1.0 - cfg.target_coverage))
    covered = confs >= threshold
    err = np.abs(values - y)
    report = {
        "n_samples": int(len(x)),
        "n_leaves": int(tree.n_leaves),
        "depth": int(tree.depth),
        "conf_threshold": round(threshold, 6),
        "train_coverage": round(float(covered.mean()), 4),
        "mae_logratio": round(float(err.mean()), 6),
        "mae_logratio_covered": round(
            float(err[covered].mean()) if covered.any() else 0.0, 6
        ),
        "refresh_every": cfg.refresh_every,
    }
    meta = dict(report)
    meta["gru_dim"] = int(policy.cfg.gru_dim)
    distilled = DistilledPolicy(
        tree=tree,
        conf_threshold=threshold,
        refresh_every=cfg.refresh_every,
        meta=meta,
    )
    return distilled, report


def evaluate_distilled(
    distilled: DistilledPolicy,
    policy: SagePolicy,
    pool,
    state_mask: Optional[np.ndarray] = None,
    max_samples: Optional[int] = None,
) -> dict:
    """Imitation quality of a distilled controller on a (held-out) pool.

    Reports coverage under the calibrated gate and ratio-space agreement
    with the NN's deterministic path, overall and on the covered subset.
    """
    fp = FastPolicy(policy)
    x, y = build_distill_dataset(
        fp, pool, state_mask=state_mask, max_samples=max_samples
    )
    values, confs = distilled.tree.predict(x)
    covered = confs >= distilled.conf_threshold
    ratio_err = np.abs(np.exp(values) - np.exp(y))
    rel_close = ratio_err <= 0.05 * np.exp(y)
    return {
        "n_samples": int(len(x)),
        "coverage": round(float(covered.mean()), 4),
        "mae_logratio": round(float(np.abs(values - y).mean()), 6),
        "mae_ratio": round(float(ratio_err.mean()), 6),
        "ratio_within_5pct": round(float(rel_close.mean()), 4),
        "ratio_within_5pct_covered": round(
            float(rel_close[covered].mean()) if covered.any() else 0.0, 4
        ),
    }
