#!/usr/bin/env python
"""Rebuild the shipped pretrained checkpoint, deterministically.

Collects an 8-scheme pool over a 36-environment grid (24 Set I + 12
Set II), trains the default laptop-scale Sage (GRU-32) for 1200 CRR steps
with a fixed seed, validates the result on a familiar link, and writes

- ``models/sage_pretrained.npz``  — the policy parameters,
- ``models/sage_pretrained.json`` — the architecture + provenance metadata
  ``tests/test_pretrained.py`` checks.

Everything is seeded (pool rollouts by each environment's ``trace_seed``,
the learner by ``--seed``), so two runs on the same machine produce the
same checkpoint. Pool collection fans out across worker processes
(``--workers``); the pool is bit-identical for any worker count.

Usage::

    PYTHONPATH=src python tools/export_pretrained.py            # full rebuild
    PYTHONPATH=src python tools/export_pretrained.py --tiny     # smoke test
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.collector.environments import (  # noqa: E402
    EnvConfig,
    set1_environments,
    set2_environments,
)
from repro.collector.parallel import collect_pool_parallel  # noqa: E402
from repro.core.agent import SageAgent  # noqa: E402
from repro.core.crr import CRRConfig, CRRTrainer  # noqa: E402
from repro.core.networks import NetworkConfig  # noqa: E402
from repro.collector.rollout import run_policy  # noqa: E402

#: the 8-scheme pool the shipped model is trained on
POOL_SCHEMES = [
    "cubic",
    "vegas",
    "bbr2",
    "newreno",
    "yeah",
    "westwood",
    "htcp",
    "illinois",
]

NET = NetworkConfig(enc_dim=32, gru_dim=32, n_components=3, n_atoms=15)
CRR = CRRConfig()


def export_environments(tiny: bool = False):
    """24 Set I (12 flat + 12 step) + 12 Set II environments = 36."""
    if tiny:
        return set1_environments(
            bws=(24.0,), rtts=(0.04,), buffers=(2.0,),
            step_ms=(0.5,), duration=6.0,
        )
    return set1_environments(
        bws=(12.0, 24.0, 48.0), rtts=(0.02, 0.04), buffers=(1.0, 4.0),
        step_ms=(0.5, 2.0), duration=12.0,
    ) + set2_environments(
        bws=(12.0, 24.0, 48.0), rtts=(0.02, 0.04), buffers=(2.0, 8.0),
        duration=12.0,
    )


def validate(agent: SageAgent) -> dict:
    """Run the shipped-model acceptance check (mirrors test_pretrained)."""
    env = EnvConfig(
        env_id="pretrained-check", kind="flat", bw_mbps=24.0,
        min_rtt=0.04, buffer_bdp=2.0, duration=8.0,
    )
    result = run_policy(env, agent)
    return {
        "throughput_mbps": result.stats.avg_throughput_bps / 1e6,
        "avg_owd_ms": result.stats.avg_owd * 1e3,
        "throughput_ok": result.stats.avg_throughput_bps > 24e6 / 6,
        "owd_ok": result.stats.avg_owd < 0.04,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=1450,
                        help="CRR training steps (default 1450 — the "
                             "validated operating point for seed 42)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=os.cpu_count() or 1,
                        help="pool-collection worker processes")
    parser.add_argument("--pool", type=Path, default=None,
                        help="reuse a previously saved pool .npz instead of "
                             "collecting one")
    parser.add_argument("--out-dir", type=Path, default=REPO / "models")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test scale: 3 envs, 30 steps, no "
                             "validation gate (for CI)")
    args = parser.parse_args(argv)

    steps = 30 if args.tiny else args.steps
    envs = export_environments(tiny=args.tiny)
    schemes = POOL_SCHEMES[:2] if args.tiny else POOL_SCHEMES

    t0 = time.perf_counter()
    if args.pool is not None:
        from repro.collector.pool import PolicyPool

        pool = PolicyPool.load(args.pool)
        print(f"loaded pool {args.pool}", flush=True)
    else:
        print(f"collecting pool: {len(envs)} envs x {len(schemes)} schemes "
              f"({args.workers} workers)", flush=True)
        pool = collect_pool_parallel(
            envs, schemes=schemes, workers=args.workers,
            progress=lambda ev: print(
                f"  [{ev.done}/{ev.total}] {ev.label}", flush=True),
        )
    print(f"pool: {pool.n_transitions} transitions "
          f"({time.perf_counter() - t0:.0f}s)", flush=True)

    t1 = time.perf_counter()
    print(f"training: {steps} CRR steps, seed {args.seed}", flush=True)
    trainer = CRRTrainer(pool, net_config=NET, config=CRR, seed=args.seed)
    trainer.train(steps)
    print(f"trained ({time.perf_counter() - t1:.0f}s)", flush=True)

    out_dir = args.out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    model_path = out_dir / "sage_pretrained.npz"
    meta_path = out_dir / "sage_pretrained.json"
    SageAgent(trainer.policy, name="sage").save(model_path)

    # validate through the exact load path tests/test_pretrained.py uses
    agent = SageAgent.load(model_path, net_config=NET)
    checks = validate(agent)
    print(f"validation: {checks['throughput_mbps']:.2f} Mbps "
          f"(ok={checks['throughput_ok']}), "
          f"avg OWD {checks['avg_owd_ms']:.1f} ms (ok={checks['owd_ok']})",
          flush=True)
    if not args.tiny and not (checks["throughput_ok"] and checks["owd_ok"]):
        model_path.unlink(missing_ok=True)
        print("FAILED validation — checkpoint removed", flush=True)
        return 1

    meta = {
        "enc_dim": NET.enc_dim,
        "gru_dim": NET.gru_dim,
        "n_components": NET.n_components,
        "n_atoms": NET.n_atoms,
        "train_steps": steps,
        "pool_schemes": schemes,
        "n_envs": len(envs),
        "seed": args.seed,
    }
    meta_path.write_text(json.dumps(meta, indent=1) + "\n")
    print(f"wrote {model_path} + {meta_path}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
