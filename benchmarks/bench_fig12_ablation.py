"""Fig. 12 — ablation study.

Six variants retrained identically: three input ablations (no Min/Max,
no rttVar-rate block, no Loss/Inflight block) and three architecture
ablations (no GRU, no post-encoder, no GMM). Paper shape: every ablation
loses winning rate somewhere; the GRU matters most.
"""

from dataclasses import replace

from conftest import BENCH_CRR, BENCH_NET, SCALE, bench_set1, bench_set2, once

from repro.core.ablation import ABLATIONS, train_ablation
from repro.evalx.leagues import Participant, run_league

STEPS = {"tiny": 60, "small": 200, "full": 1000}[SCALE]


def test_fig12_ablation(benchmark, policy_pool, sage_agent):
    set1, set2 = bench_set1()[:2], bench_set2()[:2]

    def run():
        participants = [Participant.from_agent(sage_agent)]
        for name in ABLATIONS:
            agent = train_ablation(
                policy_pool, name, n_steps=STEPS, net_config=BENCH_NET,
                crr_config=BENCH_CRR,
            )
            participants.append(Participant.from_agent(agent))
        return run_league(participants, set1=set1, set2=set2)

    result = once(benchmark, run)
    print("\n=== Fig. 12: ablations ===")
    print(result.format_table())
    names = set(result.set1_rates)
    assert {"sage", "no-minmax", "no-gru", "no-gmm", "no-encoder",
            "no-rttvar", "no-loss-inf"} <= names
