"""BIC-TCP (Xu, Harfoush, Rhee — INFOCOM 2004).

Binary-search window increase: after a loss, the window binary-searches
between the last saturation point ``W_max`` and the current window, capped
by ``S_max`` per RTT (additive phase) with a ``max probing`` phase beyond
``W_max``. Predecessor of Cubic and one of the 13 pool schemes.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Bic(CongestionControl):
    """Binary increase congestion control."""

    name = "bic"

    S_MAX = 16.0  # max increment per RTT (packets)
    S_MIN = 0.01  # min increment per RTT
    BETA = 0.8  # multiplicative decrease factor
    LOW_WINDOW = 14.0  # below this, behave like Reno

    def __init__(self) -> None:
        self.w_max = 0.0

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
            return
        cwnd = sock.cwnd
        if cwnd < self.LOW_WINDOW or self.w_max <= 0:
            inc = 1.0
        elif cwnd < self.w_max:
            dist = (self.w_max - cwnd) / 2.0
            inc = min(max(dist, self.S_MIN), self.S_MAX)
        else:
            # max probing: slow near w_max, accelerating beyond it
            dist = cwnd - self.w_max
            if dist < self.S_MAX:
                inc = max(dist / 2.0, self.S_MIN) if dist > 0 else self.S_MIN
            else:
                inc = self.S_MAX
        sock.cwnd += inc * n_acked / max(cwnd, 1.0)

    def ssthresh(self, sock) -> float:
        if sock.cwnd < self.w_max:
            # fast convergence
            self.w_max = sock.cwnd * (1.0 + self.BETA) / 2.0
        else:
            self.w_max = sock.cwnd
        if sock.cwnd < self.LOW_WINDOW:
            return max(sock.cwnd / 2.0, self.MIN_CWND)
        return max(sock.cwnd * self.BETA, self.MIN_CWND)
