"""Tests for the fused training engine (repro.train).

The load-bearing guarantee: with the same seed and ``prefetch=0``, the
fused :class:`FastCRRTrainer` consumes the *identical RNG stream* as the
legacy :class:`CRRTrainer` and its metric trajectories match within the
pinned float tolerance (the fused path reorders float summations — BLAS
blocking on the larger matmuls, GRU gate-weight splitting — but changes
no math and no random draws).
"""

import threading

import numpy as np
import pytest

from repro.collector.gr_unit import STATE_DIM
from repro.collector.pool import PolicyPool, Trajectory
from repro.core.crr import CRRConfig, CRRTrainer
from repro.core.networks import NetworkConfig
from repro.train.bench import EQUIVALENCE_RTOL, run_train_bench
from repro.train.engine import FastCRRTrainer
from repro.train.sampler import SequenceSampler

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)
METRICS = ("critic_loss", "policy_loss", "mean_f")


def synthetic_pool(rng, n_traj=6, length=24, good_action=1.1):
    trajs = []
    for i in range(n_traj):
        states = rng.standard_normal((length, STATE_DIM)) * 0.1
        actions = rng.uniform(0.6, 1.8, size=length)
        rewards = np.exp(-10.0 * (actions - good_action) ** 2)
        trajs.append(
            Trajectory(
                scheme=f"s{i}", env_id=f"e{i}", multi_flow=False,
                states=states, actions=actions, rewards=rewards,
            )
        )
    return PolicyPool(trajs)


def make_pair(seed=0, cfg=None, net=TINY, **fast_kw):
    pool = synthetic_pool(np.random.default_rng(seed))
    cfg = cfg if cfg is not None else CRRConfig(batch_size=4, seq_len=4)
    legacy = CRRTrainer(pool, net_config=net, config=cfg, seed=seed)
    fast = FastCRRTrainer(pool, net_config=net, config=cfg, seed=seed, **fast_kw)
    return legacy, fast


class TestEquivalence:
    """Fused vs legacy: same seed, prefetch=0, pinned tolerance."""

    def test_single_step_tight(self):
        legacy, fast = make_pair(seed=3)
        m0, m1 = legacy.train_step(), fast.train_step()
        for k in METRICS:
            assert m1[k] == pytest.approx(m0[k], rel=1e-9, abs=1e-12), k

    @pytest.mark.parametrize("filter_type", ["exp", "binary"])
    def test_trajectory_within_pinned_tolerance(self, filter_type):
        cfg = CRRConfig(batch_size=4, seq_len=4, filter_type=filter_type)
        legacy, fast = make_pair(seed=1, cfg=cfg)
        for step in range(12):
            m0, m1 = legacy.train_step(), fast.train_step()
            for k in METRICS:
                rel = abs(m0[k] - m1[k]) / (abs(m0[k]) + 1e-12)
                assert rel <= EQUIVALENCE_RTOL, (step, k, m0[k], m1[k])

    def test_rng_streams_bit_identical(self):
        # Every draw (pool sampling, target actions, the t-major m_samples
        # filter draws) must happen in the legacy order on the same
        # generator — the whole stream, not just the final state.
        legacy, fast = make_pair(seed=2)
        for step in range(6):
            legacy.train_step()
            fast.train_step()
            assert (
                legacy.rng.bit_generator.state == fast.rng.bit_generator.state
            ), f"RNG stream diverged at step {step}"

    def test_weights_track_legacy(self):
        legacy, fast = make_pair(seed=5)
        legacy.train(5)
        fast.train(5)
        p0 = legacy.policy.state_dict()
        p1 = fast.policy.state_dict()
        for k in p0:
            np.testing.assert_allclose(p1[k], p0[k], rtol=1e-6, atol=1e-9)

    def test_ablation_configs_equivalent(self):
        from dataclasses import replace

        for flag in ("use_gru", "use_post_encoder", "use_gmm"):
            net = replace(TINY, **{flag: False})
            legacy, fast = make_pair(seed=6, net=net)
            m0, m1 = legacy.train_step(), fast.train_step()
            for k in METRICS:
                assert m1[k] == pytest.approx(m0[k], rel=1e-7, abs=1e-10), (
                    flag, k,
                )


class TestSampler:
    def _pool(self, seed=0):
        return synthetic_pool(np.random.default_rng(seed))

    def test_prefetch0_bit_identical_to_direct_draws(self):
        pool = self._pool()
        rng1 = np.random.default_rng(11)
        rng2 = np.random.default_rng(11)
        sampler = SequenceSampler(pool, 4, 4, rng=rng1, prefetch=0)
        for _ in range(5):
            got = sampler.next_batch()
            ref = pool.sample_sequences(4, 4, rng2)
            for key in ref:
                np.testing.assert_array_equal(got[key], ref[key])
        assert rng1.bit_generator.state == rng2.bit_generator.state
        assert sampler.batch_index == 5

    @pytest.mark.parametrize("workers", [1, 3])
    def test_prefetch_deterministic_across_worker_counts(self, workers):
        pool = self._pool()
        with SequenceSampler(pool, 4, 4, prefetch=2, workers=workers, seed=9) as s:
            batches = [s.next_batch() for _ in range(8)]
        # reference: the documented per-index seed stream
        from repro.collector.parallel import derive_seed

        for k, got in enumerate(batches):
            ref = pool.sample_sequences(
                4, 4, np.random.default_rng(derive_seed(9, k))
            )
            for key in ref:
                np.testing.assert_array_equal(got[key], ref[key])

    def test_seek_resumes_seed_stream(self):
        pool = self._pool()
        with SequenceSampler(pool, 4, 4, prefetch=2, seed=9) as s:
            full = [s.next_batch() for _ in range(6)]
        with SequenceSampler(pool, 4, 4, prefetch=2, seed=9) as s:
            s.next_batch()
            s.seek(4)
            resumed = s.next_batch()
        np.testing.assert_array_equal(resumed["states"], full[4]["states"])

    def test_worker_error_propagates_original_exception(self):
        pool = self._pool()
        s = SequenceSampler(pool, 4, 4, prefetch=1, seed=0)
        s.seq_len = 10_000  # longer than any trajectory -> draw must fail
        # the consumer sees the worker's *original* exception type, so it
        # can be handled the same way a synchronous draw failure would be
        with pytest.raises(ValueError, match="trajectory"):
            s.next_batch()
        s.close()

    def test_close_after_worker_crash(self):
        pool = self._pool()
        before = threading.active_count()
        s = SequenceSampler(pool, 4, 4, prefetch=2, workers=2, seed=0)
        s.seq_len = 10_000
        with pytest.raises(ValueError):
            s.next_batch()
        s.close()  # must not hang or raise
        assert threading.active_count() == before
        # and the sampler is restartable after a crash via seek()
        s.seq_len = 4
        s.seek(0)
        batch = s.next_batch()
        assert batch["states"].shape[0] == 4
        s.close()

    def test_validation(self):
        pool = self._pool()
        with pytest.raises(ValueError):
            SequenceSampler(pool, 4, 4, prefetch=-1)
        with pytest.raises(ValueError):
            SequenceSampler(pool, 4, 4, workers=0)

    def test_close_leaves_no_threads(self):
        pool = self._pool()
        before = threading.active_count()
        s = SequenceSampler(pool, 4, 4, prefetch=2, workers=2, seed=1)
        s.next_batch()
        s.close()
        assert threading.active_count() == before


class TestEngine:
    def _fast(self, seed=0, **kw):
        pool = synthetic_pool(np.random.default_rng(seed))
        cfg = CRRConfig(batch_size=4, seq_len=4)
        return FastCRRTrainer(pool, net_config=TINY, config=cfg, seed=seed, **kw)

    def test_prefetch_mode_trains(self):
        t = self._fast(prefetch=2, sampler_workers=2)
        m = t.train(4)
        t.close()
        assert all(np.isfinite(m[k]) for k in METRICS)
        assert t.steps_done == 4

    def test_timing_summary_phases(self):
        t = self._fast()
        t.train(2)
        timing = t.timing_summary()
        for phase in ("sample", "targets", "critic", "filter", "policy", "update"):
            assert timing[phase] >= 0.0
        assert timing["steps_per_s"] > 0

    def test_checkpoint_resume_continues_identically(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        pool = synthetic_pool(np.random.default_rng(4))
        cfg = CRRConfig(batch_size=4, seq_len=4)
        t1 = FastCRRTrainer(pool, net_config=TINY, config=cfg, seed=4)
        t1.train(5)
        t1.save_checkpoint(path)
        cont = [t1.train_step() for _ in range(4)]

        # different seed: every weight, Adam moment, and RNG state differs
        # until the checkpoint overwrites them (the pool is the same — a
        # resumed run trains on the same data).
        t2 = FastCRRTrainer(pool, net_config=TINY, config=cfg, seed=99)
        t2.load_checkpoint(path)
        assert t2.steps_done == 5
        resumed = [t2.train_step() for _ in range(4)]
        # bitwise identical: same weights, same Adam state, same RNG stream
        for a, b in zip(cont, resumed):
            for k in METRICS:
                assert a[k] == b[k], k

    def test_periodic_checkpoint_written(self, tmp_path):
        path = tmp_path / "periodic.npz"
        t = self._fast()
        t.train(4, checkpoint_every=2, checkpoint_path=str(path))
        assert path.exists()
        with pytest.raises(ValueError):
            t.train(1, checkpoint_every=2)

    def test_train_sage_on_pool_engines(self):
        from repro.core.training import train_sage_on_pool

        pool = synthetic_pool(np.random.default_rng(8))
        cfg = CRRConfig(batch_size=4, seq_len=4)
        run_fast = train_sage_on_pool(
            pool, n_steps=4, n_checkpoints=2, net_config=TINY, crr_config=cfg
        )
        assert isinstance(run_fast.trainer, FastCRRTrainer)
        run_legacy = train_sage_on_pool(
            pool, n_steps=4, n_checkpoints=2, net_config=TINY, crr_config=cfg,
            engine="legacy",
        )
        assert type(run_legacy.trainer) is CRRTrainer
        # same seed, prefetch=0: both engines end at the same weights
        p0 = run_legacy.trainer.policy.state_dict()
        p1 = run_fast.trainer.policy.state_dict()
        for k in p0:
            np.testing.assert_allclose(p1[k], p0[k], rtol=1e-6, atol=1e-9)
        with pytest.raises(ValueError):
            train_sage_on_pool(pool, n_steps=4, n_checkpoints=2, engine="gpu")


class TestBench:
    def test_report_shape_and_equivalence(self):
        pool = synthetic_pool(np.random.default_rng(12))
        result = run_train_bench(
            pool=pool, steps=3, warmup=1, eq_steps=3,
            net_config=TINY,
            crr_config=CRRConfig(batch_size=4, seq_len=4),
        )
        assert result["equivalence"]["within_tolerance"]
        assert result["equivalence"]["rng_streams_identical"]
        assert result["legacy"]["steps_per_s"] > 0
        assert result["fused"]["steps_per_s"] > 0
        assert "phase_seconds" in result["fused"]

    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["train", "--pool", "p.npz", "--engine", "legacy",
             "--prefetch", "2", "--workers", "3"]
        )
        assert args.engine == "legacy"
        assert args.prefetch == 2 and args.workers == 3
        args = parser.parse_args(["train-bench", "--steps", "5"])
        assert args.steps == 5 and args.out == "BENCH_train.json"
        with pytest.raises(SystemExit):
            parser.parse_args(["train", "--pool", "p.npz", "--engine", "gpu"])
