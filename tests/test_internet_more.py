"""More coverage for the Internet-path evaluation machinery."""

import numpy as np
import pytest

from repro.evalx.internet import (
    InternetReport,
    _path_envs,
    cellular_envs,
    evaluate_paths,
    inter_continental_envs,
    intra_continental_envs,
)
from repro.evalx.leagues import Participant


class TestPathGeneration:
    def test_n_paths_truncates(self):
        assert len(intra_continental_envs(n_paths=4)) == 4
        assert len(inter_continental_envs(n_paths=2)) == 2

    def test_unique_trace_seeds(self):
        envs = intra_continental_envs()
        seeds = [e.trace_seed for e in envs]
        assert len(seeds) == len(set(seeds))

    def test_rtt_span_covers_paper_extremes(self):
        # across both sets the paper spans 7-237 ms
        all_envs = intra_continental_envs() + inter_continental_envs()
        rtts = [e.min_rtt for e in all_envs]
        assert min(rtts) < 0.05
        assert max(rtts) > 0.15

    def test_cellular_env_parameters_vary(self):
        envs = cellular_envs(n_traces=10)
        assert len({e.bw_mbps for e in envs}) > 1
        assert len({e.min_rtt for e in envs}) > 1

    def test_path_envs_deterministic_per_seed(self):
        a = _path_envs(["x", "y"], 0.01, 0.1, 10, 50, 5.0, "t", None, seed=3)
        b = _path_envs(["x", "y"], 0.01, 0.1, 10, 50, 5.0, "t", None, seed=3)
        assert [e.min_rtt for e in a] == [e.min_rtt for e in b]


class TestReport:
    def test_report_table_sorted_by_power(self):
        rep = InternetReport(
            tag="t",
            norm_throughput={"a": 1.0, "b": 0.5},
            norm_delay={"a": 1.0, "b": 1.0},
            norm_delay_p95={"a": 1.2, "b": 1.1},
        )
        lines = rep.format_table().splitlines()
        assert lines[1].strip().startswith("a")

    def test_evaluate_paths_handles_single_scheme(self):
        envs = intra_continental_envs(duration=3.0, n_paths=1)
        rep = evaluate_paths([Participant.from_scheme("cubic")], envs, "solo")
        # with a single participant it is its own reference
        assert rep.norm_throughput["cubic"] == pytest.approx(1.0)
        assert rep.norm_delay["cubic"] == pytest.approx(1.0)
