"""Tests for the policy-serving engine (repro.serve)."""

import time

import numpy as np
import pytest

from repro.collector.gr_unit import STATE_DIM, normalize_state
from repro.core.agent import SageAgent
from repro.core.networks import FastPolicy, NetworkConfig, SagePolicy
from repro.serve.engine import PolicyServer, ServeConfig
from repro.serve.fallback import AimdFallback, CubicFallback, make_fallback
from repro.serve.metrics import ServingMetrics

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=3, n_atoms=7)


@pytest.fixture()
def policy():
    return SagePolicy(TINY, np.random.default_rng(0))


@pytest.fixture()
def fast(policy):
    return FastPolicy(policy)


class FakeClock:
    """Deterministic time source: each call advances by ``per_call``."""

    def __init__(self, per_call: float) -> None:
        self.t = 0.0
        self.per_call = per_call

    def __call__(self) -> float:
        self.t += self.per_call
        return self.t


class SlowFastPolicy(FastPolicy):
    """An artificially slow policy: every forward sleeps past any budget."""

    SLEEP = 0.002

    def step(self, state, h):
        time.sleep(self.SLEEP)
        return super().step(state, h)

    def step_batch(self, states, h):
        time.sleep(self.SLEEP)
        return super().step_batch(states, h)


# ---------------------------------------------------------------------------
# Satellite: batched-vs-serial equivalence
# ---------------------------------------------------------------------------


class TestBatchedEquivalence:
    def test_batched_identical_to_batch1(self, fast):
        """(N, 69) batched step == N independent batch=1 steps, bitwise."""
        rng = np.random.default_rng(1)
        n, t_steps = 13, 7
        states = rng.standard_normal((t_steps, n, STATE_DIM))
        h = fast.initial_state_batch(n)
        batched = np.empty((t_steps, n))
        for t in range(t_steps):
            r, h = fast.step_batch(states[t], h)
            batched[t] = r
        single = np.empty((t_steps, n))
        for i in range(n):
            hi = fast.initial_state_batch(1)
            for t in range(t_steps):
                r, hi = fast.step_batch(states[t, i : i + 1], hi)
                single[t, i] = r[0]
        assert np.array_equal(batched, single)

    def test_batched_close_to_legacy_1d(self, fast):
        """The einsum path matches the BLAS gemv path to float rounding."""
        rng = np.random.default_rng(2)
        n, t_steps = 5, 6
        states = rng.standard_normal((t_steps, n, STATE_DIM))
        h = fast.initial_state_batch(n)
        batched = np.empty((t_steps, n))
        for t in range(t_steps):
            r, h = fast.step_batch(states[t], h)
            batched[t] = r
        legacy = np.empty((t_steps, n))
        for i in range(n):
            hl = fast.initial_state()
            for t in range(t_steps):
                r, hl = fast.step(states[t, i], hl)
                legacy[t, i] = r
        assert np.allclose(batched, legacy, rtol=1e-9, atol=1e-12)

    def test_sample_batch_matches_per_flow_rng_streams(self, fast):
        """A flow's sample stream is independent of its batch-mates."""
        rng = np.random.default_rng(3)
        n = 6
        states = rng.standard_normal((n, STATE_DIM))
        rngs = [np.random.default_rng(100 + i) for i in range(n)]
        ratios, _ = fast.sample_step_batch(states, fast.initial_state_batch(n), rngs)
        for i in range(n):
            r, _ = fast.sample_step(
                states[i], fast.initial_state(), np.random.default_rng(100 + i)
            )
            assert ratios[i] == pytest.approx(r, rel=1e-9)

    def test_no_gru_batched(self):
        cfg = NetworkConfig(enc_dim=16, gru_dim=16, n_atoms=7, use_gru=False)
        fast = FastPolicy(SagePolicy(cfg, np.random.default_rng(0)))
        assert fast.initial_state_batch(4) is None
        states = np.random.default_rng(4).standard_normal((4, STATE_DIM))
        ratios, h = fast.step_batch(states, None)
        assert h is None and ratios.shape == (4,)
        for i in range(4):
            r, _ = fast.step_batch(states[i : i + 1], None)
            assert ratios[i] == r[0]

    def test_server_batch_composition_invariant(self, policy):
        """Serving a flow alone or sharing a batch gives identical ratios."""
        rng = np.random.default_rng(5)
        states = rng.standard_normal((6, 3, STATE_DIM))
        cfg = ServeConfig(deterministic=True, tick_budget=None)

        shared = PolicyServer(policy, cfg)
        for fid in range(3):
            shared.connect(fid)
        together = []
        for t in range(6):
            for fid in range(3):
                shared.submit(fid, states[t, fid])
            together.append(shared.tick()[2].ratio)

        # flow 2 must see the exact same decisions when served by itself
        # through the batched kernel (batch >= 2 avoids the 1-D fast path)
        alone = PolicyServer(policy, cfg)
        alone.connect(2)
        alone.connect(7)  # one inert batch-mate with different inputs
        solo = []
        for t in range(6):
            alone.submit(2, states[t, 2])
            alone.submit(7, states[t, 0] * 0.5)
            solo.append(alone.tick()[2].ratio)
        assert together == solo


# ---------------------------------------------------------------------------
# Hidden-state table lifecycle
# ---------------------------------------------------------------------------


class TestHiddenTable:
    def test_connect_close_recycles_rows(self, policy):
        server = PolicyServer(policy, ServeConfig(initial_capacity=2))
        server.connect(10)
        server.connect(11)
        assert server.n_flows == 2 and server.capacity == 2
        server.close(10)
        server.connect(12)  # reuses the freed row, no growth
        assert server.capacity == 2

    def test_table_grows_on_demand(self, policy):
        server = PolicyServer(policy, ServeConfig(initial_capacity=2))
        for fid in range(5):
            server.connect(fid)
        assert server.n_flows == 5 and server.capacity >= 5

    def test_growth_preserves_hidden_state(self, policy):
        server = PolicyServer(
            policy, ServeConfig(deterministic=True, tick_budget=None,
                                initial_capacity=1)
        )
        ref = PolicyServer(
            policy, ServeConfig(deterministic=True, tick_budget=None)
        )
        rng = np.random.default_rng(6)
        states = rng.standard_normal((4, STATE_DIM))
        server.connect(0)
        ref.connect(0)
        r0 = server.serve_one(0, states[0]).ratio
        assert r0 == ref.serve_one(0, states[0]).ratio
        server.connect(1)  # forces a grow() mid-session
        server.connect(2)
        for t in range(1, 4):
            assert (
                server.serve_one(0, states[t]).ratio
                == ref.serve_one(0, states[t]).ratio
            )

    def test_double_connect_rejected(self, policy):
        server = PolicyServer(policy)
        server.connect(0)
        with pytest.raises(ValueError):
            server.connect(0)

    def test_close_unknown_rejected(self, policy):
        with pytest.raises(KeyError):
            PolicyServer(policy).close(99)

    def test_submit_unknown_rejected(self, policy):
        with pytest.raises(KeyError):
            PolicyServer(policy).submit(99, np.zeros(STATE_DIM))

    def test_fresh_connection_gets_zero_hidden(self, policy):
        server = PolicyServer(policy, ServeConfig(deterministic=True,
                                                  tick_budget=None))
        s = np.random.default_rng(7).standard_normal(STATE_DIM)
        server.connect(0)
        first = server.serve_one(0, s).ratio
        second = server.serve_one(0, s).ratio  # hidden advanced
        server.close(0)
        server.connect(1)  # recycles row 0; must start from zeros again
        assert server.serve_one(1, s).ratio == first
        assert first != second or TINY.use_gru is False


# ---------------------------------------------------------------------------
# Satellite: deadline / fallback path
# ---------------------------------------------------------------------------


class TestDeadlineFallback:
    def _server(self, policy, per_call, budget=0.020, k=3):
        return PolicyServer(
            policy,
            ServeConfig(deterministic=True, tick_budget=budget, max_misses=k),
            clock=FakeClock(per_call),
        )

    def test_within_budget_serves_policy(self, policy):
        server = self._server(policy, per_call=0.001)
        server.connect(0)
        d = server.serve_one(0, np.zeros(STATE_DIM))
        assert d.source == "policy"

    def test_miss_serves_stale_ratio(self, policy):
        server = self._server(policy, per_call=0.001)
        server.connect(0)
        good = server.serve_one(0, np.zeros(STATE_DIM))
        server.clock.per_call = 0.030  # now every forward misses 20 ms
        d = server.serve_one(0, np.zeros(STATE_DIM))
        assert d.source == "stale"
        assert d.ratio == good.ratio  # holds the previous cwnd ratio

    def test_k_misses_degrade_then_recover(self, policy):
        k = 3
        server = self._server(policy, per_call=0.030, k=k)
        server.connect(0)
        sources = [
            server.serve_one(0, np.zeros(STATE_DIM), cwnd=20.0).source
            for _ in range(k + 2)
        ]
        assert sources[: k - 1] == ["stale"] * (k - 1)
        assert sources[k - 1 :] == ["heuristic"] * 3
        # inference becomes fast again -> flow returns to the policy
        server.clock.per_call = 0.001
        d = server.serve_one(0, np.zeros(STATE_DIM))
        assert d.source == "policy"
        # ...and a later brown-out restarts the miss count from zero
        server.clock.per_call = 0.030
        assert server.serve_one(0, np.zeros(STATE_DIM)).source == "stale"

    def test_slow_policy_injection(self, policy):
        """An actually-slow FastPolicy (wall clock) trips the deadline."""
        server = PolicyServer(
            policy,
            ServeConfig(deterministic=True, tick_budget=1e-4, max_misses=2),
            fast=SlowFastPolicy(policy),
        )
        server.connect(0)
        server.connect(1)
        for fid in (0, 1):
            server.submit(fid, np.zeros(STATE_DIM))
        first = server.tick()
        assert {d.source for d in first.values()} == {"stale"}
        for fid in (0, 1):
            server.submit(fid, np.zeros(STATE_DIM))
        second = server.tick()
        assert {d.source for d in second.values()} == {"heuristic"}
        assert server.metrics.fallback_rate == 1.0

    def test_per_flow_miss_streaks_are_individual(self, policy):
        """A flow joining mid-brown-out degrades on its own schedule."""
        server = self._server(policy, per_call=0.030, k=2)
        server.connect(0)
        server.serve_one(0, np.zeros(STATE_DIM))  # flow 0: miss #1
        server.connect(1)
        server.submit(0, np.zeros(STATE_DIM))
        server.submit(1, np.zeros(STATE_DIM))
        d = server.tick()
        assert d[0].source == "heuristic"  # second consecutive miss
        assert d[1].source == "stale"  # first miss only

    def test_no_budget_never_falls_back(self, policy):
        server = PolicyServer(
            policy,
            ServeConfig(deterministic=True, tick_budget=None),
            clock=FakeClock(10.0),  # absurdly slow clock; budget disabled
        )
        server.connect(0)
        assert server.serve_one(0, np.zeros(STATE_DIM)).source == "policy"


# ---------------------------------------------------------------------------
# Fallback heuristics
# ---------------------------------------------------------------------------


class TestFallbacks:
    def _state(self, srtt=0.04, loss=0.0):
        s = np.zeros(STATE_DIM)
        s[0] = srtt
        s[60] = loss
        return s

    def test_cubic_cuts_on_loss(self):
        fb = CubicFallback()
        assert fb.ratio(self._state(loss=1500.0), cwnd=40.0, dt=0.02) == (
            pytest.approx(CubicFallback.BETA)
        )

    def test_cubic_regrows_toward_wmax(self):
        fb = CubicFallback()
        fb.ratio(self._state(loss=1500.0), cwnd=40.0, dt=0.02)
        cwnd = 28.0  # post-cut
        ratios = [fb.ratio(self._state(), cwnd, 0.02) for _ in range(5)]
        assert all(r >= 1.0 for r in ratios)  # concave regrowth, no cut

    def test_cubic_probes_before_first_loss(self):
        fb = CubicFallback()
        r = fb.ratio(self._state(srtt=0.02), cwnd=10.0, dt=0.02)
        assert 1.0 < r <= 2.0  # slow-start flavoured doubling per RTT

    def test_aimd_halves_on_loss_and_grows_additively(self):
        fb = AimdFallback()
        assert fb.ratio(self._state(loss=1500.0), 20.0, 0.02) == pytest.approx(0.5)
        grow = fb.ratio(self._state(srtt=0.02), 20.0, 0.02)
        assert grow == pytest.approx(1.0 + 0.02 / (0.02 * 20.0))

    def test_registry(self):
        assert isinstance(make_fallback("cubic"), CubicFallback)
        assert isinstance(make_fallback("aimd"), AimdFallback)
        with pytest.raises(ValueError):
            make_fallback("bbr99")


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_snapshot_shape(self):
        m = ServingMetrics()
        m.record_tick(4, 0.001, missed_deadline=False)
        m.record_tick(2, 0.003, missed_deadline=True)
        for src in ("policy", "policy", "stale", "heuristic"):
            m.record_decision(src)
        snap = m.snapshot()
        assert snap["ticks"] == 2 and snap["decisions"] == 4
        assert snap["deadline_misses"] == 1
        assert snap["batch_hist"] == {"2": 1, "4": 1}
        assert snap["sources"] == {
            "policy": 2, "symbolic": 0, "stale": 1, "heuristic": 1
        }
        assert snap["tiers"]["nn"]["decisions"] == 3
        assert snap["tiers"]["symbolic"]["decisions"] == 0
        assert snap["tiers"]["heuristic"]["decisions"] == 1
        assert snap["symbolic_hit_rate"] == 0.0
        assert snap["fallback_rate"] == pytest.approx(0.5)
        assert snap["latency_p50_ms"] == pytest.approx(2.0)

    def test_empty_metrics(self):
        snap = ServingMetrics().snapshot()
        assert snap["fallback_rate"] == 0.0
        assert snap["latency_p50_ms"] == 0.0

    def test_server_records_batch_histogram(self, policy):
        server = PolicyServer(policy, ServeConfig(tick_budget=None))
        for fid in range(3):
            server.connect(fid)
        for fid in range(3):
            server.submit(fid, np.zeros(STATE_DIM))
        server.tick()
        server.submit(0, np.zeros(STATE_DIM))
        server.tick()
        assert server.metrics.snapshot()["batch_hist"] == {"1": 1, "3": 1}


# ---------------------------------------------------------------------------
# Satellite: SageAgent as a thin serving client
# ---------------------------------------------------------------------------


class TestSageAgentClient:
    def test_act_before_reset_raises(self, policy):
        agent = SageAgent(policy)
        with pytest.raises(RuntimeError, match="before reset"):
            agent.act(np.zeros(STATE_DIM))

    def test_act_matches_legacy_inline_path(self, policy):
        """The served batch=1 path is bit-identical to the historical one."""
        fast = FastPolicy(policy)
        rng = np.random.default_rng(11)
        states = rng.standard_normal((20, STATE_DIM))
        h = fast.initial_state()
        legacy_rng = np.random.default_rng(42)
        legacy = []
        for s in states:
            r, h = fast.sample_step(normalize_state(s), h, legacy_rng)
            legacy.append(float(r))
        agent = SageAgent(policy, seed=42)
        agent.reset()
        assert [agent.act(s) for s in states] == legacy

    def test_state_mask_applied(self, policy):
        mask = np.ones(STATE_DIM)
        mask[5] = 0.0
        agent = SageAgent(policy, deterministic=True, state_mask=mask)
        agent.reset()
        base = np.zeros(STATE_DIM)
        r1 = agent.act(base)
        agent.reset()
        poked = base.copy()
        poked[5] = 100.0
        assert agent.act(poked) == pytest.approx(r1)


# ---------------------------------------------------------------------------
# Tentpole: the tiered router (symbolic tier 0 in front of the batched NN)
# ---------------------------------------------------------------------------


def make_leaf_tree(value: float, conf: float):
    """A single-leaf tree: answers ``exp(value)`` with fixed confidence."""
    from repro.distill import FEATURE_DIM
    from repro.distill.tree import RegressionTree

    return RegressionTree(
        feature=np.array([-1]), threshold=np.array([0.0]),
        left=np.array([-1]), right=np.array([-1]),
        value=np.array([value]), conf=np.array([conf]),
        n_features=FEATURE_DIM, depth=0,
    )


def make_split_tree(feature: int, threshold: float, conf_low: float,
                    conf_high: float, value: float = 0.0):
    """Depth-1 tree: rows with x[feature] <= threshold get ``conf_low``."""
    from repro.distill import FEATURE_DIM
    from repro.distill.tree import RegressionTree

    return RegressionTree(
        feature=np.array([feature, -1, -1]),
        threshold=np.array([threshold, 0.0, 0.0]),
        left=np.array([1, -1, -1]), right=np.array([2, -1, -1]),
        value=np.array([0.0, value, value]),
        conf=np.array([1.0, conf_low, conf_high]),
        n_features=FEATURE_DIM, depth=1,
    )


class TestTieredRouter:
    def _distilled(self, tree, threshold=0.5, refresh=1000):
        from repro.distill import DistilledPolicy

        return DistilledPolicy(
            tree, conf_threshold=threshold, refresh_every=refresh
        )

    def _run(self, policy, distilled, flows=6, ticks=12, seed=0, **cfg_kwargs):
        cfg = ServeConfig(
            deterministic=True, tick_budget=None, seed=seed, **cfg_kwargs
        )
        server = PolicyServer(policy, cfg, distilled=distilled)
        rng = np.random.default_rng(seed)
        states = rng.standard_normal((ticks, flows, STATE_DIM)) * 50
        for i in range(flows):
            server.connect(i)
        stream = []
        for t in range(ticks):
            for i in range(flows):
                server.submit(i, states[t, i])
            stream.append(server.tick())
        return server, stream

    def test_nn_decisions_bitwise_identical_when_tier_disabled(self, policy):
        """Satellite: gate shut (threshold > 1) == no symbolic tier at all."""
        never_passes = self._distilled(make_leaf_tree(0.0, conf=0.9),
                                       threshold=2.0)
        _, with_tier = self._run(policy, never_passes)
        _, without = self._run(policy, None)
        for d_tier, d_none in zip(with_tier, without):
            assert set(d_tier) == set(d_none)
            for fid in d_tier:
                assert d_tier[fid].ratio == d_none[fid].ratio
                assert d_tier[fid].source == d_none[fid].source

    def test_confident_flows_answered_symbolically(self, policy):
        distilled = self._distilled(make_leaf_tree(0.1, conf=0.9))
        server, stream = self._run(policy, distilled)
        # tick 1: everyone takes the NN (ages start at the refresh wall's
        # worth of history only after the first forward)... the leaf gate
        # passes from the first tick, so all decisions are symbolic
        for decisions in stream:
            for d in decisions.values():
                assert d.source == "symbolic"
                assert d.ratio == pytest.approx(np.exp(0.1))
        snap = server.metrics.snapshot()
        assert snap["symbolic_hit_rate"] == 1.0
        assert snap["tiers"]["nn"]["decisions"] == 0

    def test_uncertainty_gate_property(self, policy):
        """A flow whose leaf confidence is below threshold never gets a
        tree answer — it always pays the NN forward."""
        # split on the first *state* feature, so each flow's leaf (and
        # therefore its confidence) is computable from the submitted state
        tree = make_split_tree(0, 0.0, conf_low=0.2, conf_high=0.95)
        distilled = self._distilled(tree, threshold=0.5)
        cfg = ServeConfig(deterministic=True, tick_budget=None, seed=0)
        server = PolicyServer(policy, cfg, distilled=distilled)
        rng = np.random.default_rng(0)
        flows, ticks = 8, 20
        states = rng.standard_normal((ticks, flows, STATE_DIM)) * 50
        for i in range(flows):
            server.connect(i)
        saw_low, saw_sym = 0, 0
        for t in range(ticks):
            for i in range(flows):
                server.submit(i, states[t, i])
            decisions = server.tick()
            for i, d in decisions.items():
                below = normalize_state(states[t, i])[0] <= 0.0
                if below:
                    saw_low += 1
                    assert d.source != "symbolic", (
                        f"below-threshold flow {i} answered by the tree "
                        f"at tick {t}"
                    )
                if d.source == "symbolic":
                    saw_sym += 1
                    assert not below
        # the property must actually have been exercised from both sides
        assert saw_low > 0 and saw_sym > 0

    def test_refresh_forces_periodic_nn_forward(self, policy):
        """Even an always-confident tree yields to the NN every R ticks."""
        refresh = 4
        distilled = self._distilled(make_leaf_tree(0.0, conf=0.99),
                                    refresh=refresh)
        _, stream = self._run(policy, distilled, flows=3, ticks=12)
        for fid in range(3):
            sources = [ds[fid].source for ds in stream]
            for start in range(0, 12, refresh):
                window = sources[start : start + refresh]
                assert "policy" in window, (
                    f"flow {fid} went {refresh} ticks without an NN refresh: "
                    f"{sources}"
                )

    def test_symbolic_answers_advance_cwnd_estimate(self, policy):
        """Tier-0 ratio commits update the fallback's cwnd estimate."""
        distilled = self._distilled(make_leaf_tree(0.2, conf=0.9))
        cfg = ServeConfig(deterministic=True, tick_budget=None)
        server = PolicyServer(policy, cfg, distilled=distilled)
        server.connect(0)
        server.submit(0, np.zeros(STATE_DIM), cwnd=100.0)
        server.tick()
        row = server._sessions[0].row
        assert server._cwnd_est[row] == pytest.approx(100.0 * np.exp(0.2))

    def test_metrics_tier_accounting(self, policy):
        distilled = self._distilled(make_leaf_tree(0.0, conf=0.9),
                                    refresh=4)
        server, stream = self._run(policy, distilled, flows=4, ticks=8)
        snap = server.metrics.snapshot()
        assert snap["decisions"] == 32
        tiers = snap["tiers"]
        assert tiers["symbolic"]["decisions"] + tiers["nn"]["decisions"] == 32
        assert tiers["symbolic"]["decisions"] > 0
        assert tiers["nn"]["decisions"] > 0  # refresh forwards
        assert snap["invalid_actions"] == 0
        # symbolic tier records its own latency samples
        assert tiers["symbolic"]["latency_p50_ms"] >= 0.0

    def test_served_agent_accepts_distilled(self, policy):
        from repro.serve.client import ServedAgent

        distilled = self._distilled(make_leaf_tree(0.05, conf=0.9))
        agent = ServedAgent(policy, deterministic=True, distilled=distilled)
        agent.reset()
        ratio = agent.act(np.zeros(STATE_DIM))
        assert ratio == pytest.approx(np.exp(0.05))
        assert agent.server.distilled is distilled

    def test_non_finite_symbolic_ratio_goes_to_nn(self, policy):
        """A poisoned tree value must never be served; the NN answers."""
        distilled = self._distilled(make_leaf_tree(np.nan, conf=0.99))
        _, stream = self._run(policy, distilled, flows=3, ticks=4)
        for ds in stream:
            for d in ds.values():
                assert d.source == "policy"
                assert np.isfinite(d.ratio)

    def test_config_overrides_beat_distilled_defaults(self, policy):
        distilled = self._distilled(make_leaf_tree(0.0, conf=0.6),
                                    threshold=0.5, refresh=1000)
        # override: impossible threshold -> no symbolic answers at all
        server, stream = self._run(
            policy, distilled, confidence_threshold=0.99
        )
        assert server.metrics.snapshot()["symbolic_hit_rate"] == 0.0
