"""Compound TCP (Tan et al. — INFOCOM 2006; Windows' default for years).

Maintains two windows: the classic loss-based AIMD window and a
*delay-based* window ``dwnd`` that grows binomially while the Vegas-style
backlog estimate stays under ``gamma`` and drains when queueing appears.
The send window is their sum — aggressive on empty high-BDP paths, Reno-like
once the buffer fills.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Compound(CongestionControl):
    """Loss window + delay window (CTCP)."""

    name = "compound"

    ALPHA = 0.125  # binomial increase coefficient
    K = 0.75  # binomial exponent
    ETA = 1.0  # dwnd drain rate per backlogged packet
    GAMMA = 30.0  # backlog threshold, packets
    BETA = 0.5  # loss-window decrease

    def __init__(self) -> None:
        self.base_rtt = float("inf")
        self.lwnd = 10.0  # loss-based component
        self.dwnd = 0.0  # delay-based component
        self._acks_in_rtt = 0.0
        self.min_rtt_cycle = float("inf")

    def on_init(self, sock) -> None:
        self.lwnd = sock.cwnd

    def _sync(self, sock) -> None:
        sock.cwnd = max(self.lwnd + self.dwnd, self.MIN_CWND)

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt > 0:
            self.base_rtt = min(self.base_rtt, rtt)
            self.min_rtt_cycle = min(self.min_rtt_cycle, rtt)
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
            self.lwnd = sock.cwnd
            return
        # loss component: plain Reno
        self.lwnd += n_acked / max(self.lwnd + self.dwnd, 1.0)
        # delay component: once per RTT
        self._acks_in_rtt += n_acked
        if self._acks_in_rtt >= sock.cwnd:
            self._acks_in_rtt = 0.0
            rtt_c = self.min_rtt_cycle
            self.min_rtt_cycle = float("inf")
            if rtt_c != float("inf") and self.base_rtt != float("inf"):
                wnd = self.lwnd + self.dwnd
                expected = wnd / self.base_rtt
                actual = wnd / max(rtt_c, 1e-6)
                diff = (expected - actual) * self.base_rtt
                if diff < self.GAMMA:
                    self.dwnd += max(self.ALPHA * (wnd ** self.K) - 1.0, 0.0)
                else:
                    self.dwnd = max(self.dwnd - self.ETA * diff, 0.0)
        self._sync(sock)

    def ssthresh(self, sock) -> float:
        self.lwnd = max(self.lwnd * self.BETA, self.MIN_CWND)
        self.dwnd = max(sock.cwnd * (1.0 - self.BETA) - self.lwnd, 0.0) / 2.0
        return max(self.lwnd + self.dwnd, self.MIN_CWND)

    def on_loss_event(self, sock, now: float) -> None:
        sock.ssthresh = self.ssthresh(sock)
        self._sync(sock)
        sock.cwnd = max(sock.ssthresh, self.MIN_CWND)

    def on_rto(self, sock, now: float) -> None:
        self.lwnd = self.MIN_CWND
        self.dwnd = 0.0
        sock.ssthresh = max(sock.cwnd / 2.0, self.MIN_CWND)
        sock.cwnd = self.MIN_CWND
