"""Unit tests for the TCP sender/receiver machinery.

These use a real (tiny) network so that the loss/recovery paths are
exercised against genuine queueing behaviour.
"""

import pytest

from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.netsim.traces import FlatRate
from repro.tcp.cc_base import CongestionControl
from repro.tcp.flow import Flow
from repro.tcp.socket import CA_OPEN, CA_RECOVERY, TcpSender


class HoldCC(CongestionControl):
    """A scheme that pins cwnd forever (isolates transport machinery)."""

    def __init__(self, cwnd=10.0):
        self._cwnd = cwnd
        self.name = "hold"

    def on_init(self, sock):
        sock.cwnd = self._cwnd

    def on_ack(self, sock, n_acked, rtt, now):
        sock.cwnd = self._cwnd

    def on_loss_event(self, sock, now):
        sock.cwnd = self._cwnd

    def on_rto(self, sock, now):
        sock.cwnd = self._cwnd


def make_flow(bw=12e6, rtt=0.04, buf=60_000, cc=None, cwnd=10.0):
    loop = EventLoop()
    net = Network(loop, FlatRate(bw), TailDrop(buf))
    cc = cc if cc is not None else HoldCC(cwnd)
    flow = Flow(net, 0, cc, min_rtt=rtt)
    return loop, net, flow


class TestBasics:
    def test_bulk_transfer_delivers_in_order(self):
        loop, net, flow = make_flow()
        flow.start()
        loop.run_until(2.0)
        assert flow.receiver.rcv_next > 50
        assert flow.receiver.total_packets == flow.receiver.rcv_next

    def test_rtt_estimate_close_to_truth(self):
        loop, net, flow = make_flow(cwnd=2.0)  # no queueing to speak of
        flow.start()
        loop.run_until(2.0)
        s = flow.sender
        assert s.min_rtt == pytest.approx(0.04, rel=0.1)
        assert s.srtt == pytest.approx(0.04, rel=0.3)

    def test_rttvar_positive_and_rto_sane(self):
        loop, net, flow = make_flow()
        flow.start()
        loop.run_until(2.0)
        assert flow.sender.rto >= 0.2
        assert flow.sender.rto < 5.0

    def test_inflight_respects_cwnd(self):
        loop, net, flow = make_flow(cwnd=5.0)
        flow.start()
        loop.run_until(2.0)
        assert flow.sender.inflight <= 5

    def test_delivery_rate_sampled(self):
        loop, net, flow = make_flow()
        flow.start()
        loop.run_until(2.0)
        assert flow.sender.delivery_rate > 0
        assert flow.sender.max_delivery_rate >= flow.sender.delivery_rate

    def test_start_twice_raises(self):
        loop, net, flow = make_flow()
        flow.start()
        with pytest.raises(RuntimeError):
            flow.sender.start()

    def test_stop_halts_transmission(self):
        loop, net, flow = make_flow()
        flow.start()
        loop.run_until(0.5)
        sent = flow.sender.sent_packets
        flow.stop()
        loop.run_until(2.0)
        assert flow.sender.sent_packets == sent


class TestLossRecovery:
    def test_losses_detected_and_repaired(self):
        # Window much bigger than pipe+buffer forces drops.
        loop, net, flow = make_flow(bw=4e6, buf=9000, cwnd=60.0)
        flow.start()
        loop.run_until(5.0)
        s = flow.sender
        assert s.lost > 0
        assert s.retransmits > 0
        # receiver stream still advances past the losses
        assert flow.receiver.rcv_next > 500

    def test_recovery_state_entered_and_exited(self):
        loop, net, flow = make_flow(bw=4e6, buf=9000, cwnd=60.0)
        states = set()
        flow.start()
        t = 0.0
        while t < 3.0:
            t += 0.05
            loop.run_until(t)
            states.add(flow.sender.ca_state)
        assert CA_RECOVERY in states
        assert flow.sender.ca_state in (CA_OPEN, CA_RECOVERY)

    def test_pipe_excludes_lost_packets(self):
        loop, net, flow = make_flow(bw=4e6, buf=9000, cwnd=60.0)
        flow.start()
        loop.run_until(5.0)
        s = flow.sender
        assert s.inflight <= len(s._unacked)

    def test_no_rtt_pollution_from_recovery(self):
        # Even under heavy loss, RTT samples must stay physically plausible:
        # propagation 40 ms + max queueing (9000 B at 4 Mbps = 18 ms).
        loop, net, flow = make_flow(bw=4e6, buf=9000, cwnd=60.0)
        flow.start()
        loop.run_until(5.0)
        assert flow.sender.srtt < 0.2

    def test_throughput_survives_heavy_overload(self):
        loop, net, flow = make_flow(bw=4e6, buf=9000, cwnd=200.0)
        flow.start()
        loop.run_until(5.0)
        thr = flow.receiver.total_bytes * 8 / 5.0
        assert thr > 0.5 * 4e6  # the link stays mostly busy despite chaos


class TestExternalControl:
    def test_set_cwnd_enforced(self):
        loop, net, flow = make_flow()
        flow.sender.external_cwnd_control = True
        flow.start()
        loop.run_until(0.5)
        flow.sender.set_cwnd(3.0)
        loop.run_until(1.0)
        assert flow.sender.cwnd == 3.0
        assert flow.sender.inflight <= 3

    def test_set_cwnd_clamped(self):
        loop, net, flow = make_flow()
        flow.sender.set_cwnd(0.0)
        assert flow.sender.cwnd == 1.0
        flow.sender.set_cwnd(1e9)
        assert flow.sender.cwnd == flow.sender.max_cwnd

    def test_cc_hooks_bypassed_under_external_control(self):
        class Exploder(HoldCC):
            def on_ack(self, sock, n_acked, rtt, now):  # pragma: no cover
                raise AssertionError("CC hook must not run")

        loop, net, flow = make_flow(cc=Exploder())
        flow.sender.external_cwnd_control = True
        flow.start()
        loop.run_until(1.0)  # would raise if the hook ran


class TestReceiver:
    def test_one_way_delay_includes_prop(self):
        loop, net, flow = make_flow(cwnd=2.0)
        flow.start()
        loop.run_until(1.0)
        assert flow.receiver.mean_owd >= 0.02  # at least the one-way prop

    def test_duplicate_data_ignored(self):
        loop, net, flow = make_flow(bw=4e6, buf=9000, cwnd=60.0)
        flow.start()
        loop.run_until(5.0)
        # retransmissions happened, yet every packet is counted exactly once:
        # the in-order prefix plus whatever is buffered beyond the next hole
        r = flow.receiver
        assert r.total_packets == r.rcv_next + len(r._received)
