"""YeAH-TCP — "Yet Another Highspeed TCP" (Baiocchi et al., PFLDnet 2007).

Operates in two modes decided by the estimated bottleneck backlog
``Q = (RTT - RTT_base) * cwnd / RTT``: *Fast* (aggressive STCP-style
increase) while the queue is short, *Slow* (Reno) plus "precautionary
decongestion" (subtract the backlog from the window) when the queue grows.
On loss, the window is cut in proportion to the measured backlog rather
than blindly halved.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Yeah(CongestionControl):
    """Two-mode high-speed scheme with precautionary decongestion."""

    name = "yeah"

    Q_MAX = 80.0  # backlog packets allowed before switching to slow mode
    PHI = 8.0  # rtt ratio threshold denominator (1/phi)
    GAMMA = 1.0  # decongestion aggressiveness
    EPSILON = 1.0 / 8.0  # fraction of cwnd as min decongestion step
    STCP_AI = 0.01  # scalable-TCP per-ack increase fraction

    def __init__(self) -> None:
        self.base_rtt = float("inf")
        self.min_rtt_cycle = float("inf")
        self.queue_pkts = 0.0
        self.fast_mode = True
        self._acks_in_rtt = 0.0

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt > 0:
            self.base_rtt = min(self.base_rtt, rtt)
            self.min_rtt_cycle = min(self.min_rtt_cycle, rtt)
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
            return
        self._acks_in_rtt += n_acked
        if self._acks_in_rtt >= sock.cwnd:  # roughly once per RTT
            self._per_rtt_update(sock)
            self._acks_in_rtt = 0.0
        if self.fast_mode:
            # scalable-TCP style increase: +0.01 packets per acked packet
            sock.cwnd += self.STCP_AI * n_acked
        else:
            self.reno_increase(sock, n_acked)

    def _per_rtt_update(self, sock) -> None:
        rtt = self.min_rtt_cycle
        self.min_rtt_cycle = float("inf")
        if rtt == float("inf") or self.base_rtt == float("inf") or rtt <= 0:
            return
        queue_delay = max(rtt - self.base_rtt, 0.0)
        self.queue_pkts = queue_delay * sock.cwnd / rtt
        congested = (
            self.queue_pkts > self.Q_MAX
            or (rtt - self.base_rtt) > self.base_rtt / self.PHI
        )
        if congested:
            self.fast_mode = False
            # precautionary decongestion: drain the estimated backlog
            reduction = max(self.queue_pkts / self.GAMMA, sock.cwnd * self.EPSILON)
            if self.queue_pkts > self.Q_MAX:
                sock.cwnd = max(sock.cwnd - reduction, self.MIN_CWND)
                sock.ssthresh = sock.cwnd
        else:
            self.fast_mode = True

    def ssthresh(self, sock) -> float:
        if self.queue_pkts < self.Q_MAX and self.queue_pkts > 0:
            # loss with small measured backlog: cut by the backlog only
            reduction = max(self.queue_pkts, sock.cwnd / 8.0)
            return max(sock.cwnd - reduction, self.MIN_CWND)
        return max(sock.cwnd / 2.0, self.MIN_CWND)
