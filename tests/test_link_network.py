"""Unit tests for the bottleneck link and the dumbbell network."""

import pytest

from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.network import Network, PathConfig, make_network
from repro.netsim.packet import Packet
from repro.netsim.traces import FlatRate, StepRate


def data(seq, flow=0, size=1500):
    return Packet(flow_id=flow, seq=seq, size=size)


class TestLink:
    def test_serialization_time(self):
        loop = EventLoop()
        delivered = []
        link = Link(loop, FlatRate(12e6), TailDrop(100_000), lambda p: delivered.append(loop.now))
        link.send(data(0))  # 1500 B at 12 Mbps = 1 ms
        loop.run_until(1.0)
        assert delivered == [pytest.approx(0.001)]

    def test_back_to_back_packets_queue(self):
        loop = EventLoop()
        delivered = []
        link = Link(loop, FlatRate(12e6), TailDrop(100_000), lambda p: delivered.append(loop.now))
        link.send(data(0))
        link.send(data(1))
        loop.run_until(1.0)
        assert delivered == [pytest.approx(0.001), pytest.approx(0.002)]

    def test_delivery_preserves_order(self):
        loop = EventLoop()
        seqs = []
        link = Link(loop, FlatRate(100e6), TailDrop(1_000_000), lambda p: seqs.append(p.seq))
        for i in range(20):
            link.send(data(i))
        loop.run_until(1.0)
        assert seqs == list(range(20))

    def test_drops_counted(self):
        loop = EventLoop()
        link = Link(loop, FlatRate(1e6), TailDrop(3000), lambda p: None)
        for i in range(10):
            link.send(data(i))
        assert link.drops > 0

    def test_rate_change_affects_service(self):
        loop = EventLoop()
        delivered = []
        link = Link(
            loop, StepRate(12e6, 2.0, t_switch=0.0009), TailDrop(100_000),
            lambda p: delivered.append(loop.now),
        )
        link.send(data(0))
        link.send(data(1))  # service starts after the switch: 24 Mbps -> 0.5 ms
        loop.run_until(1.0)
        assert delivered[1] - delivered[0] == pytest.approx(0.0005, abs=1e-4)

    def test_queue_delay_estimate(self):
        loop = EventLoop()
        link = Link(loop, FlatRate(12e6), TailDrop(1_000_000), lambda p: None)
        for i in range(11):
            link.send(data(i))
        # 10 queued behind 1 in service: 10 * 1500 * 8 / 12e6 = 10 ms
        assert link.queue_delay() == pytest.approx(0.010, rel=0.05)


class TestNetwork:
    def _net(self):
        loop = EventLoop()
        return loop, Network(loop, FlatRate(12e6), TailDrop(100_000))

    def test_data_arrives_after_service_plus_prop(self):
        loop, net = self._net()
        arrivals = []
        net.attach_flow(
            0, PathConfig(min_rtt=0.04),
            data_sink=lambda p: arrivals.append(loop.now),
            ack_sink=lambda p: None,
        )
        net.send_data(data(0))
        loop.run_until(1.0)
        assert arrivals == [pytest.approx(0.001 + 0.02)]

    def test_ack_returns_after_rev_delay(self):
        loop, net = self._net()
        acks = []
        net.attach_flow(
            0, PathConfig(min_rtt=0.04),
            data_sink=lambda p: None,
            ack_sink=lambda p: acks.append(loop.now),
        )
        ack = Packet(flow_id=0, seq=0, is_ack=True)
        net.send_ack(ack)
        loop.run_until(1.0)
        assert acks == [pytest.approx(0.02)]

    def test_flows_share_the_bottleneck(self):
        loop, net = self._net()
        arrivals = {0: [], 1: []}
        for fid in (0, 1):
            net.attach_flow(
                fid, PathConfig(min_rtt=0.02),
                data_sink=lambda p, f=fid: arrivals[f].append(loop.now),
                ack_sink=lambda p: None,
            )
        net.send_data(data(0, flow=0))
        net.send_data(data(0, flow=1))
        loop.run_until(1.0)
        # second flow's packet is serialized behind the first one
        assert arrivals[1][0] - arrivals[0][0] == pytest.approx(0.001)

    def test_duplicate_flow_id_rejected(self):
        loop, net = self._net()
        net.attach_flow(0, PathConfig(min_rtt=0.02), lambda p: None, lambda p: None)
        with pytest.raises(ValueError):
            net.attach_flow(0, PathConfig(min_rtt=0.02), lambda p: None, lambda p: None)

    def test_unknown_flow_rejected(self):
        loop, net = self._net()
        with pytest.raises(ValueError, match="flow 42 is not attached"):
            net.send_data(data(0, flow=42))

    def test_unknown_flow_ack_rejected(self):
        loop, net = self._net()
        with pytest.raises(ValueError, match="flow 7 is not attached"):
            net.send_ack(data(0, flow=7))

    def test_min_rtt_lookup(self):
        loop, net = self._net()
        net.attach_flow(3, PathConfig(min_rtt=0.1), lambda p: None, lambda p: None)
        assert net.min_rtt(3) == 0.1

    def test_path_config_validation(self):
        with pytest.raises(ValueError):
            PathConfig(min_rtt=0.0)

    def test_make_network_defaults(self):
        net = make_network(FlatRate(1e6), buffer_bytes=10_000)
        assert isinstance(net, Network)
        assert isinstance(net.link.aqm, TailDrop)
