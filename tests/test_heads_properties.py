"""Property-based tests on the probabilistic heads (GMM, C51)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.autograd import Tensor
from repro.nn.heads import DistributionalHead, GMMHead, LOG_ACTION_HI, LOG_ACTION_LO


def make_gmm():
    return GMMHead(8, 3, np.random.default_rng(0))


def make_c51():
    return DistributionalHead(8, np.random.default_rng(1), n_atoms=11,
                              v_min=0.0, v_max=10.0)


class TestGMMProperties:
    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_log_prob_is_a_density(self, seed):
        gmm = make_gmm()
        # densities can exceed 1 pointwise but are bounded by the tightest
        # component: sigma >= exp(log_std_min) -> max density 1/(sigma*sqrt(2pi))
        rng = np.random.default_rng(seed)
        h = Tensor(rng.standard_normal((4, 8)))
        a = rng.uniform(LOG_ACTION_LO, LOG_ACTION_HI, size=4)
        lp = gmm.log_prob(h, a).data
        max_density = 1.0 / (np.exp(gmm.log_std_min) * np.sqrt(2 * np.pi))
        assert np.all(lp <= np.log(max_density) + 1e-9)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_empirical_mean_matches_clipped_mixture_mean(self, seed):
        gmm = make_gmm()
        rng = np.random.default_rng(seed)
        h = Tensor(rng.standard_normal((1, 8)).repeat(3000, axis=0))
        samples = np.log(gmm.sample(h, np.random.default_rng(seed + 1)))
        logits, means, log_std = gmm._split(Tensor(h.data[:1]))
        w = np.exp(logits.data[0] - logits.data[0].max())
        w /= w.sum()
        # analytic mean of clip(mixture): integrate the clipped variable
        grid = np.linspace(LOG_ACTION_LO - 6, LOG_ACTION_HI + 6, 8001)
        pdf = np.zeros_like(grid)
        for wk, mu, ls in zip(w, means.data[0], log_std.data[0]):
            sigma = np.exp(ls)
            pdf += wk * np.exp(-0.5 * ((grid - mu) / sigma) ** 2) / (
                sigma * np.sqrt(2 * np.pi)
            )
        clipped = np.clip(grid, LOG_ACTION_LO, LOG_ACTION_HI)
        expected = np.trapezoid(clipped * pdf, grid)
        assert abs(samples.mean() - expected) < 0.06

    def test_mode_is_most_likely_component_mean(self):
        gmm = make_gmm()
        h = Tensor(np.random.default_rng(3).standard_normal((5, 8)))
        modes = np.log(gmm.mode(h))
        logits, means, _ = gmm._split(h)
        comps = logits.data.argmax(axis=-1)
        expected = means.data[np.arange(5), comps]
        np.testing.assert_allclose(modes, np.clip(expected, LOG_ACTION_LO, LOG_ACTION_HI))


class TestC51Properties:
    @given(
        rewards=st.lists(st.floats(-3.0, 3.0), min_size=3, max_size=3),
        gamma=st.floats(0.5, 0.999),
    )
    @settings(max_examples=20, deadline=None)
    def test_projection_mean_matches_bellman_mean(self, rewards, gamma):
        c51 = make_c51()
        # E[projected] == clip-adjusted r + gamma E[Z'] when nothing clips
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(11), size=3)
        r = np.asarray(rewards)
        target = c51.project_target(r, gamma, probs)
        projected_mean = (target * c51.atoms).sum(axis=1)
        bellman = np.clip(
            r[:, None] + gamma * c51.atoms[None, :], c51.v_min, c51.v_max
        )
        expected = (probs * bellman).sum(axis=1)
        np.testing.assert_allclose(projected_mean, expected, atol=1e-9)

    def test_projection_is_linear_in_probs(self):
        c51 = make_c51()
        rng = np.random.default_rng(2)
        p1 = rng.dirichlet(np.ones(11), size=2)
        p2 = rng.dirichlet(np.ones(11), size=2)
        r = np.array([1.0, -1.0])
        mix = 0.3 * p1 + 0.7 * p2
        t_mix = c51.project_target(r, 0.9, mix)
        t_sep = 0.3 * c51.project_target(r, 0.9, p1) + 0.7 * c51.project_target(
            r, 0.9, p2
        )
        np.testing.assert_allclose(t_mix, t_sep, atol=1e-12)

    @given(gamma=st.floats(0.0, 0.99))
    @settings(max_examples=10, deadline=None)
    def test_gamma_zero_collapses_to_reward(self, gamma):
        c51 = make_c51()
        probs = np.full((1, 11), 1.0 / 11)
        target = c51.project_target(np.array([5.0]), 0.0, probs)
        mean = (target * c51.atoms).sum()
        assert mean == pytest.approx(5.0)
