#!/usr/bin/env python
"""Quickstart: the full Sage pipeline in two minutes.

1. Collect a small pool of policies (heuristic schemes x environments).
2. Train Sage offline with CRR — no network interaction during training.
3. Deploy the learned policy in an unseen environment and compare it with
   the heuristics it learned from.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.collector.environments import EnvConfig
from repro.collector.rollout import collect_trajectory, run_policy
from repro.core.crr import CRRConfig
from repro.core.networks import NetworkConfig
from repro.core.training import collect_pool, train_sage_on_pool


def main() -> None:
    # ------------------------------------------------------------------
    # Phase 1 — the Policy Collector: run heuristics, record trajectories.
    # ------------------------------------------------------------------
    train_envs = [
        EnvConfig(env_id="train-flat", kind="flat", bw_mbps=24.0,
                  min_rtt=0.04, buffer_bdp=2.0, duration=10.0),
        EnvConfig(env_id="train-vs-cubic", kind="flat", bw_mbps=24.0,
                  min_rtt=0.04, buffer_bdp=4.0, n_competing_cubic=1,
                  duration=12.0),
    ]
    schemes = ["cubic", "vegas", "bbr2", "newreno"]
    print("collecting the pool of policies ...")
    pool = collect_pool(train_envs, schemes=schemes)
    print(pool.summary())

    # ------------------------------------------------------------------
    # Phase 2 — fully-offline CRR training (environments now "unplugged").
    # ------------------------------------------------------------------
    print("\ntraining Sage offline (CRR) ...")
    run = train_sage_on_pool(
        pool,
        n_steps=150,
        n_checkpoints=3,
        net_config=NetworkConfig(enc_dim=24, gru_dim=24, n_components=2,
                                 n_atoms=11),
        crr_config=CRRConfig(batch_size=8, seq_len=6, lr_policy=1e-3,
                             lr_critic=1e-3),
    )
    print(f"trained {run.trainer.steps_done} gradient steps, "
          f"{len(run.checkpoints)} checkpoints")

    # ------------------------------------------------------------------
    # Phase 3 — deployment in an *unseen* environment.
    # ------------------------------------------------------------------
    test_env = EnvConfig(env_id="unseen", kind="flat", bw_mbps=36.0,
                         min_rtt=0.03, buffer_bdp=3.0, duration=10.0)
    print(f"\ndeploying on unseen env: {test_env.bw_mbps:.0f} Mbps, "
          f"{test_env.min_rtt * 1e3:.0f} ms RTT")
    print(f"{'scheme':>10} {'thr (Mbps)':>11} {'owd (ms)':>9} {'reward':>8}")
    for scheme in schemes:
        r = collect_trajectory(test_env, scheme)
        print(f"{scheme:>10} {r.stats.avg_throughput_bps / 1e6:11.2f} "
              f"{r.stats.avg_owd * 1e3:9.1f} {np.mean(r.rewards):8.3f}")
    r = run_policy(test_env, run.agent)
    print(f"{'sage':>10} {r.stats.avg_throughput_bps / 1e6:11.2f} "
          f"{r.stats.avg_owd * 1e3:9.1f} {np.mean(r.rewards):8.3f}")


if __name__ == "__main__":
    main()
