"""The deployable Sage agent — the user-space side of the Execution block.

Wraps a trained :class:`~repro.core.networks.SagePolicy`: at every control
tick it normalizes the GR state, advances the recurrent hidden state, and
emits a cwnd ratio. Satisfies the
:class:`~repro.collector.rollout.PolicyAgent` protocol.

Since the serving engine landed, ``SageAgent`` is a thin client of
:class:`~repro.serve.engine.PolicyServer`: ``reset()`` opens a single-flow
serving session (no deadline — offline rollouts always take the fresh
policy path) and ``act()`` is one ``serve_one`` call. A batch of one rides
the server's legacy 1-D fast path, so the agent's decision stream —
including the stochastic deployment mode's RNG consumption — is
bit-identical to the historical in-process implementation. Multi-flow
deployments should talk to a shared :class:`PolicyServer` directly (or via
:class:`~repro.serve.client.ServedAgent`) to get batched inference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.collector.gr_unit import normalize_state
from repro.core.networks import FastPolicy, NetworkConfig, SagePolicy
from repro.nn.autograd import no_grad
from repro.nn.serial import load_params, save_params


class SageAgent:
    """A trained policy, ready to drive a TCP sender.

    All inference runs through :class:`FastPolicy` (plain numpy, the
    analogue of the paper's frozen TF graph, fast enough for the 20 ms
    control tick). The default is *stochastic* deployment — the paper's
    Execution block samples the action from pi(a|s); the stochasticity
    doubles as bandwidth probing. ``deterministic=True`` switches to the
    mode of the most likely mixture component.
    """

    #: the server-side id of this agent's single flow
    FLOW_ID = 0

    def __init__(
        self,
        policy: SagePolicy,
        deterministic: bool = False,
        seed: int = 0,
        name: str = "sage",
        state_mask=None,
    ) -> None:
        self.policy = policy
        self.deterministic = deterministic
        self.rng = np.random.default_rng(seed)
        self.name = name
        #: optional 0/1 input mask matching the training-time ablation
        self.state_mask = None if state_mask is None else np.asarray(state_mask, float)
        self._fast: Optional[FastPolicy] = None  # rebuilt on reset (weights may train)
        self._server = None  # single-flow PolicyServer, opened by reset()

    # -- PolicyAgent protocol -------------------------------------------
    def reset(self) -> None:
        """Snapshot the weights and open a fresh serving session."""
        # imported here: repro.serve depends on repro.core.networks
        from repro.serve.engine import PolicyServer, ServeConfig

        self._fast = FastPolicy(self.policy)
        self._server = PolicyServer(
            self.policy,
            ServeConfig(
                deterministic=self.deterministic,
                tick_budget=None,
                state_mask=self.state_mask,
            ),
            fast=self._fast,
        )
        self._server.connect(self.FLOW_ID, rng=self.rng)
        self._slow_hidden = self.policy.initial_state(1)

    def act(self, state: np.ndarray) -> float:
        """Map one raw 69-dim GR state to a cwnd ratio."""
        if self._server is None:
            raise RuntimeError(
                "SageAgent.act() called before reset(); reset() snapshots the "
                "policy weights and opens the serving session"
            )
        return float(self._server.serve_one(self.FLOW_ID, state).ratio)

    # -- analysis hooks ----------------------------------------------------
    def hidden_features(self, state: np.ndarray) -> np.ndarray:
        """Last-hidden-layer features for one state (t-SNE, Fig. 16)."""
        x = normalize_state(state)
        with no_grad():
            feat, self._slow_hidden = self.policy.step(x, self._slow_hidden)
        return feat.data[0]

    # -- persistence ------------------------------------------------------
    def save(self, path) -> None:
        save_params(self.policy, path)

    @classmethod
    def load(
        cls,
        path,
        net_config: Optional[NetworkConfig] = None,
        name: str = "sage",
        deterministic: bool = False,
    ) -> "SageAgent":
        cfg = net_config if net_config is not None else NetworkConfig()
        policy = SagePolicy(cfg, np.random.default_rng(0))
        load_params(policy, path)
        return cls(policy, deterministic=deterministic, name=name)
