"""Scalable TCP (Kelly — CCR 2003).

Multiplicative-increase/multiplicative-decrease: +0.01 packets per ACK
(so recovery time after a loss is constant regardless of window size) and
a mild 1/8 reduction on loss. YeAH borrows its fast-mode increase from
this scheme.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Scalable(CongestionControl):
    """MIMD for high-BDP paths: a = 0.01/ack, b = 1/8."""

    name = "scalable"

    AI = 0.01  # per-ACK increase, packets
    MD = 0.125  # multiplicative decrease fraction
    LOW_WINDOW = 16.0  # Reno-compatible region

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
            return
        if sock.cwnd < self.LOW_WINDOW:
            self.reno_increase(sock, n_acked)
        else:
            sock.cwnd += self.AI * n_acked

    def ssthresh(self, sock) -> float:
        if sock.cwnd < self.LOW_WINDOW:
            return max(sock.cwnd / 2.0, self.MIN_CWND)
        return max(sock.cwnd * (1.0 - self.MD), self.MIN_CWND)
