"""The manifest: a sharded store's index and integrity record.

A store directory looks like::

    shards/
      manifest.json              <- this module
      shard-00000.states.npy     <- (rows, state_dim) concatenated states
      shard-00000.actions.npy    <- (rows,)
      shard-00000.rewards.npy    <- (rows,)
      shard-00001.states.npy
      ...
      quarantine/                <- corrupt shards moved here by verify()

``manifest.json`` indexes every trajectory — scheme, env_id, multi_flow,
length, which shard holds it and at what row offset — plus a per-file
CRC32 for every shard component, so a store can be audited without numpy
parsing anything. Integrity failures are handled at shard granularity:
:func:`verify_store` moves a corrupt shard (and drops its trajectories)
into ``quarantine/`` instead of declaring the whole pool lost.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

SCHEMA_VERSION = 1
MANIFEST_NAME = "manifest.json"
QUARANTINE_DIR = "quarantine"

#: the three arrays every shard is made of
SHARD_PARTS = ("states", "actions", "rewards")


def file_crc32(path: Path, chunk_bytes: int = 1 << 20) -> int:
    """CRC32 of a file's raw bytes, streamed in bounded chunks."""
    crc = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_bytes)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


@dataclass
class ShardFile:
    """One component array file of a shard."""

    file: str
    crc32: int
    bytes: int

    def to_json(self) -> Dict:
        return {"file": self.file, "crc32": self.crc32, "bytes": self.bytes}

    @classmethod
    def from_json(cls, d: Dict) -> "ShardFile":
        return cls(file=str(d["file"]), crc32=int(d["crc32"]), bytes=int(d["bytes"]))


@dataclass
class ShardRecord:
    """One shard: a fixed-size slab of concatenated trajectories."""

    name: str
    rows: int
    n_trajectories: int
    files: Dict[str, ShardFile]

    def to_json(self) -> Dict:
        return {
            "name": self.name,
            "rows": self.rows,
            "n_trajectories": self.n_trajectories,
            "files": {k: v.to_json() for k, v in self.files.items()},
        }

    @classmethod
    def from_json(cls, d: Dict) -> "ShardRecord":
        return cls(
            name=str(d["name"]),
            rows=int(d["rows"]),
            n_trajectories=int(d["n_trajectories"]),
            files={k: ShardFile.from_json(v) for k, v in d["files"].items()},
        )


@dataclass
class TrajectoryRecord:
    """Where one trajectory lives and what produced it."""

    scheme: str
    env_id: str
    multi_flow: bool
    length: int
    shard: int  # index into Manifest.shards
    offset: int  # first row within the shard's arrays

    def to_json(self) -> Dict:
        return {
            "scheme": self.scheme,
            "env_id": self.env_id,
            "multi_flow": self.multi_flow,
            "length": self.length,
            "shard": self.shard,
            "offset": self.offset,
        }

    @classmethod
    def from_json(cls, d: Dict) -> "TrajectoryRecord":
        return cls(
            scheme=str(d["scheme"]),
            env_id=str(d["env_id"]),
            multi_flow=bool(d["multi_flow"]),
            length=int(d["length"]),
            shard=int(d["shard"]),
            offset=int(d["offset"]),
        )


@dataclass
class Manifest:
    """The JSON-serializable index of a sharded trajectory store."""

    state_dim: int
    dtypes: Dict[str, str] = field(
        default_factory=lambda: {p: "float64" for p in SHARD_PARTS}
    )
    shards: List[ShardRecord] = field(default_factory=list)
    trajectories: List[TrajectoryRecord] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    @property
    def n_transitions(self) -> int:
        return sum(t.length for t in self.trajectories)

    def validate(self) -> None:
        """Internal-consistency check: every record points inside its shard."""
        for i, t in enumerate(self.trajectories):
            if not 0 <= t.shard < len(self.shards):
                raise ValueError(
                    f"trajectory {i} references missing shard {t.shard}"
                )
            shard = self.shards[t.shard]
            if t.length < 1:
                raise ValueError(f"trajectory {i} has zero length")
            if t.offset < 0 or t.offset + t.length > shard.rows:
                raise ValueError(
                    f"trajectory {i} spans [{t.offset}, {t.offset + t.length}) "
                    f"outside shard {shard.name!r} with {shard.rows} rows"
                )

    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        return {
            "schema_version": self.schema_version,
            "state_dim": self.state_dim,
            "dtypes": dict(self.dtypes),
            "shards": [s.to_json() for s in self.shards],
            "trajectories": [t.to_json() for t in self.trajectories],
        }

    def save(self, root) -> None:
        """Atomically (re)write ``root/manifest.json``."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        tmp = root / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(self.to_json(), indent=1) + "\n")
        os.replace(tmp, root / MANIFEST_NAME)

    @classmethod
    def load(cls, root) -> "Manifest":
        root = Path(root)
        path = root / MANIFEST_NAME if root.is_dir() else root
        if not path.exists():
            raise FileNotFoundError(
                f"no {MANIFEST_NAME} in {path.parent} — not a trajectory store "
                "(use `repro pool pack` to convert a legacy .npz pool)"
            )
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt manifest {path}: {exc}") from exc
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"manifest {path} has schema version {version!r}; this build "
                f"reads version {SCHEMA_VERSION}"
            )
        manifest = cls(
            state_dim=int(data["state_dim"]),
            dtypes={k: str(v) for k, v in data["dtypes"].items()},
            shards=[ShardRecord.from_json(s) for s in data["shards"]],
            trajectories=[
                TrajectoryRecord.from_json(t) for t in data["trajectories"]
            ],
            schema_version=int(version),
        )
        manifest.validate()
        return manifest


# --------------------------------------------------------------------------
# Integrity audit
# --------------------------------------------------------------------------


@dataclass
class ShardProblem:
    """Why one shard failed verification."""

    name: str
    reason: str


@dataclass
class VerifyReport:
    """Outcome of a store audit."""

    n_shards: int
    n_trajectories: int
    n_transitions: int
    ok_shards: List[str] = field(default_factory=list)
    corrupt: List[ShardProblem] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    dropped_trajectories: int = 0
    #: orphaned ``*.tmp`` files (a mid-flush crash's litter) found in the
    #: store root; deleted when the audit runs with ``quarantine=True``
    tmp_orphans: List[str] = field(default_factory=list)
    tmp_removed: bool = False

    @property
    def clean(self) -> bool:
        return not self.corrupt

    def format(self) -> str:
        lines = [
            f"verified {self.n_shards} shards, {self.n_trajectories} "
            f"trajectories, {self.n_transitions} transitions"
        ]
        if self.clean:
            lines.append("all shard checksums OK")
        for p in self.corrupt:
            lines.append(f"CORRUPT shard {p.name}: {p.reason}")
        if self.quarantined:
            lines.append(
                f"quarantined {len(self.quarantined)} shard(s) "
                f"({self.dropped_trajectories} trajectories dropped) -> "
                f"{QUARANTINE_DIR}/"
            )
        if self.tmp_orphans:
            verb = "swept" if self.tmp_removed else "found"
            lines.append(
                f"{verb} {len(self.tmp_orphans)} orphaned .tmp file(s): "
                + ", ".join(self.tmp_orphans)
            )
        return "\n".join(lines)


def check_shard(root: Path, shard: ShardRecord) -> Optional[str]:
    """Return a problem description for ``shard``, or ``None`` if intact."""
    for part in SHARD_PARTS:
        if part not in shard.files:
            return f"manifest lists no {part} file"
        rec = shard.files[part]
        path = Path(root) / rec.file
        if not path.exists():
            return f"missing file {rec.file}"
        size = path.stat().st_size
        if size != rec.bytes:
            return f"{rec.file}: size {size} != recorded {rec.bytes}"
        crc = file_crc32(path)
        if crc != rec.crc32:
            return f"{rec.file}: crc32 {crc:#010x} != recorded {rec.crc32:#010x}"
    return None


def verify_store(root, quarantine: bool = True) -> VerifyReport:
    """Audit every shard of the store at ``root`` against the manifest.

    A shard that fails (missing file, size mismatch, CRC mismatch) is moved
    into ``root/quarantine/`` together with its manifest entries — the rest
    of the pool stays loadable. With ``quarantine=False`` the store is left
    untouched and only the report says what is broken.
    """
    root = Path(root)
    manifest = Manifest.load(root)
    report = VerifyReport(
        n_shards=len(manifest.shards),
        n_trajectories=len(manifest.trajectories),
        n_transitions=manifest.n_transitions,
    )
    # sweep mid-flush litter: a crash between tmp-write and os.replace
    # leaves *.tmp orphans the manifest knows nothing about
    for tmp in sorted(root.glob("*.tmp")):
        report.tmp_orphans.append(tmp.name)
        if quarantine:
            try:
                tmp.unlink()
                report.tmp_removed = True
            except OSError:
                pass
    bad: Dict[int, str] = {}
    for i, shard in enumerate(manifest.shards):
        problem = check_shard(root, shard)
        if problem is None:
            report.ok_shards.append(shard.name)
        else:
            bad[i] = problem
            report.corrupt.append(ShardProblem(name=shard.name, reason=problem))

    if not bad or not quarantine:
        return report

    qdir = root / QUARANTINE_DIR
    qdir.mkdir(exist_ok=True)
    for i in sorted(bad):
        shard = manifest.shards[i]
        for rec in shard.files.values():
            src = root / rec.file
            if src.exists():
                os.replace(src, qdir / Path(rec.file).name)
        report.quarantined.append(shard.name)

    # rebuild the manifest without the quarantined shards, remapping the
    # surviving trajectories onto the new shard indices
    keep = [i for i in range(len(manifest.shards)) if i not in bad]
    remap = {old: new for new, old in enumerate(keep)}
    survivors = [
        TrajectoryRecord(
            scheme=t.scheme, env_id=t.env_id, multi_flow=t.multi_flow,
            length=t.length, shard=remap[t.shard], offset=t.offset,
        )
        for t in manifest.trajectories
        if t.shard in remap
    ]
    report.dropped_trajectories = len(manifest.trajectories) - len(survivors)
    manifest.shards = [manifest.shards[i] for i in keep]
    manifest.trajectories = survivors
    manifest.save(root)
    return report
