"""Tests for scoring, winner determination, and league running."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collector.environments import EnvConfig
from repro.collector.rollout import collect_trajectory
from repro.evalx.leagues import LeagueResult, Participant, run_league
from repro.evalx.scores import (
    ScoreEntry,
    determine_winners,
    friendliness_score,
    interval_scores,
    power_score,
    winning_rates,
)


class TestPowerScore:
    def test_higher_throughput_wins(self):
        assert power_score(48e6, 0.04) > power_score(24e6, 0.04)

    def test_lower_delay_wins(self):
        assert power_score(24e6, 0.02) > power_score(24e6, 0.04)

    def test_alpha2_tradeoff(self):
        # alpha=2: ~1.41x throughput compensates 2x delay (Appendix D)
        base = power_score(24e6, 0.02, alpha=2.0)
        traded = power_score(24e6 * np.sqrt(2.0), 0.04, alpha=2.0)
        assert traded == pytest.approx(base)

    def test_alpha3_favors_throughput_more(self):
        gain2 = power_score(48e6, 0.04, alpha=2) / power_score(24e6, 0.04, alpha=2)
        gain3 = power_score(48e6, 0.04, alpha=3) / power_score(24e6, 0.04, alpha=3)
        assert gain3 > gain2

    def test_rejects_zero_delay(self):
        with pytest.raises(ValueError):
            power_score(1e6, 0.0)


class TestFriendlinessScore:
    def test_zero_at_fair_share(self):
        assert friendliness_score(24e6, 24e6) == 0.0

    def test_symmetric(self):
        assert friendliness_score(12e6, 24e6) == friendliness_score(36e6, 24e6)


def entries_for(env_id, scores, higher=True, interval=0):
    return [
        ScoreEntry(
            participant=name, env_id=env_id, interval=interval,
            score=s, higher_is_better=higher,
        )
        for name, s in scores.items()
    ]


class TestWinners:
    def test_margin_includes_near_best(self):
        e = entries_for("env", {"a": 100.0, "b": 95.0, "c": 80.0})
        winners = determine_winners(e, margin=0.10)
        assert set(winners["env#0"]) == {"a", "b"}

    def test_tighter_margin_excludes(self):
        e = entries_for("env", {"a": 100.0, "b": 95.0, "c": 80.0})
        winners = determine_winners(e, margin=0.04)
        assert set(winners["env#0"]) == {"a"}

    def test_lower_is_better_margin(self):
        e = entries_for("env", {"a": 0.0, "b": 0.5, "c": 10.0}, higher=False)
        winners = determine_winners(e, margin=0.10)
        assert "a" in winners["env#0"]
        assert "c" not in winners["env#0"]

    def test_intervals_scored_separately(self):
        e = entries_for("env", {"a": 100.0, "b": 10.0}, interval=0) + entries_for(
            "env", {"a": 10.0, "b": 100.0}, interval=1
        )
        rates = winning_rates(e)
        assert rates["a"] == 0.5
        assert rates["b"] == 0.5

    def test_bad_margin_rejected(self):
        with pytest.raises(ValueError):
            determine_winners([], margin=1.5)

    @given(
        scores=st.lists(st.floats(1.0, 100.0), min_size=2, max_size=6),
        margin=st.floats(0.0, 0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_best_always_wins(self, scores, margin):
        e = entries_for("env", {f"p{i}": s for i, s in enumerate(scores)})
        winners = determine_winners(e, margin=margin)
        best = max(range(len(scores)), key=lambda i: scores[i])
        assert f"p{best}" in winners["env#0"]

    @given(margin=st.floats(0.0, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_rates_bounded(self, margin):
        e = entries_for("e1", {"a": 5.0, "b": 3.0}) + entries_for(
            "e2", {"a": 1.0, "b": 9.0}
        )
        rates = winning_rates(e, margin=margin)
        assert all(0.0 <= r <= 1.0 for r in rates.values())
        assert max(rates.values()) > 0  # someone always wins

    def test_empty_entries(self):
        assert winning_rates([]) == {}


class TestIntervalScores:
    def _result(self, multi=False):
        env = EnvConfig(
            env_id="sc", kind="flat", bw_mbps=12.0, min_rtt=0.04,
            buffer_bdp=2.0, n_competing_cubic=1 if multi else 0, duration=4.0,
        )
        return collect_trajectory(env, "cubic")

    def test_four_intervals_by_default(self):
        entries = interval_scores(self._result())
        assert len(entries) == 4
        assert all(e.higher_is_better for e in entries)

    def test_multi_flow_lower_is_better(self):
        entries = interval_scores(self._result(multi=True))
        assert all(not e.higher_is_better for e in entries)

    def test_requires_enough_samples(self):
        r = self._result()
        r.stats.times = r.stats.times[:2]
        r.stats.throughput_series = r.stats.throughput_series[:2]
        r.stats.rtt_series = r.stats.rtt_series[:2]
        with pytest.raises(ValueError):
            interval_scores(r)


class TestLeague:
    def test_tiny_league_runs(self):
        set1 = [
            EnvConfig(env_id="l1", kind="flat", bw_mbps=12.0, min_rtt=0.04,
                      buffer_bdp=1.0, duration=4.0)
        ]
        set2 = [
            EnvConfig(env_id="l2", kind="flat", bw_mbps=12.0, min_rtt=0.04,
                      buffer_bdp=2.0, n_competing_cubic=1, duration=5.0)
        ]
        parts = [Participant.from_scheme(s) for s in ("cubic", "vegas")]
        res = run_league(parts, set1=set1, set2=set2)
        assert set(res.set1_rates) == {"cubic", "vegas"}
        assert set(res.set2_rates) == {"cubic", "vegas"}
        table = res.format_table()
        assert "cubic" in table and "vegas" in table

    def test_participant_validation(self):
        with pytest.raises(ValueError):
            Participant(name="x")
        with pytest.raises(ValueError):
            Participant(name="x", scheme="cubic", agent=object())

    def test_ranking_sorted(self):
        res = LeagueResult(
            set1_rates={"a": 0.1, "b": 0.9}, set2_rates={"a": 0.5, "b": 0.2}
        )
        assert res.ranking("set1")[0][0] == "b"
        assert res.ranking("set2")[0][0] == "a"
