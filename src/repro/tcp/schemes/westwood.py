"""TCP Westwood(+) (Casetti et al. — Wireless Networks 2002).

Maintains a low-pass-filtered estimate of the eligible bandwidth from the
ACK stream; on loss, instead of blind halving it sets
``ssthresh = BWE * RTT_min`` (in packets) — "faster recovery" sized to what
the path actually delivered.
"""

from __future__ import annotations

from repro.netsim.packet import MSS_BYTES
from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Westwood(CongestionControl):
    """Reno increase + bandwidth-estimate-based decrease."""

    name = "westwood"

    FILTER_GAIN = 0.9  # one-pole low-pass coefficient per sample window

    def __init__(self) -> None:
        self.bwe_bps = 0.0
        self._bytes_acked_win = 0
        self._win_start = 0.0
        self.rtt_min = float("inf")

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt > 0:
            self.rtt_min = min(self.rtt_min, rtt)
        self._bytes_acked_win += n_acked * MSS_BYTES
        # Sample the ACK rate roughly once per RTT, then low-pass filter.
        win = max(sock.srtt_or_min, 0.01)
        if now - self._win_start >= win:
            interval = now - self._win_start
            sample = self._bytes_acked_win * 8.0 / interval
            if self.bwe_bps == 0.0:
                self.bwe_bps = sample
            else:
                self.bwe_bps = (
                    self.FILTER_GAIN * self.bwe_bps
                    + (1.0 - self.FILTER_GAIN) * sample
                )
            self._bytes_acked_win = 0
            self._win_start = now
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
        else:
            self.reno_increase(sock, n_acked)

    def ssthresh(self, sock) -> float:
        if self.bwe_bps > 0 and self.rtt_min < float("inf"):
            pkts = self.bwe_bps * self.rtt_min / (8.0 * MSS_BYTES)
            return max(pkts, self.MIN_CWND)
        return max(sock.cwnd / 2.0, self.MIN_CWND)
