"""Tests for the Fig. 12 ablation machinery."""

import numpy as np
import pytest

from repro.collector.gr_unit import STATE_DIM, STATE_FIELDS
from repro.collector.pool import PolicyPool, Trajectory
from repro.core.ablation import ABLATIONS, _mask_without, train_ablation
from repro.core.crr import CRRConfig
from repro.core.networks import NetworkConfig

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)
TINY_CRR = CRRConfig(batch_size=4, seq_len=4)


def small_pool(seed=0):
    rng = np.random.default_rng(seed)
    trajs = [
        Trajectory(
            scheme=f"s{i}", env_id=f"e{i}", multi_flow=False,
            states=rng.standard_normal((20, STATE_DIM)),
            actions=rng.uniform(0.8, 1.2, size=20),
            rewards=rng.uniform(0, 1, size=20),
        )
        for i in range(3)
    ]
    return PolicyPool(trajs)


class TestMasks:
    def test_no_minmax_leaves_33_live_inputs(self):
        _, mask = ABLATIONS["no-minmax"]
        assert int(mask.sum()) == 33

    def test_no_rttvar_kills_18(self):
        _, mask = ABLATIONS["no-rttvar"]
        assert int((1 - mask).sum()) == 18
        killed = {STATE_FIELDS[i] for i in np.where(mask == 0)[0]}
        assert all(f.startswith(("rtt_rate_", "rtt_var_")) for f in killed)

    def test_no_loss_inf_kills_18(self):
        _, mask = ABLATIONS["no-loss-inf"]
        killed = {STATE_FIELDS[i] for i in np.where(mask == 0)[0]}
        assert all(f.startswith(("lost_", "inflight_")) for f in killed)

    def test_mask_without_shape(self):
        m = _mask_without([0, 1])
        assert m.shape == (STATE_DIM,)
        assert m[0] == 0 and m[2] == 1


class TestArchitectureVariants:
    @pytest.mark.parametrize("name", ["no-gru", "no-encoder", "no-gmm"])
    def test_config_overrides(self, name):
        overrides, mask = ABLATIONS[name]
        assert mask is None
        assert len(overrides) == 1


class TestTraining:
    @pytest.mark.parametrize("name", sorted(ABLATIONS))
    def test_every_ablation_trains_and_acts(self, name):
        agent = train_ablation(
            small_pool(), name, n_steps=2, net_config=TINY, crr_config=TINY_CRR
        )
        agent.reset()
        r = agent.act(np.zeros(STATE_DIM))
        assert 1 / 3 <= r <= 3
        assert agent.name == name

    def test_masked_agent_ignores_masked_inputs(self):
        agent = train_ablation(
            small_pool(), "no-minmax", n_steps=2, net_config=TINY,
            crr_config=TINY_CRR,
        )
        agent.deterministic = True  # compare modes, not noisy samples
        agent.reset()
        base = np.zeros(STATE_DIM)
        r1 = agent.act(base.copy())
        agent.reset()
        poked = base.copy()
        masked_idx = int(np.where(agent.state_mask == 0)[0][0])
        poked[masked_idx] = 100.0
        r2 = agent.act(poked)
        assert r1 == pytest.approx(r2)

    def test_unmasked_inputs_still_matter(self):
        agent = train_ablation(
            small_pool(), "no-minmax", n_steps=2, net_config=TINY,
            crr_config=TINY_CRR,
        )
        agent.deterministic = True
        agent.reset()
        r1 = agent.act(np.zeros(STATE_DIM))
        agent.reset()
        poked = np.zeros(STATE_DIM)
        live_idx = int(np.where(agent.state_mask == 1)[0][0])
        poked[live_idx] = 0.05
        r2 = agent.act(poked)
        assert r1 != pytest.approx(r2, abs=1e-12)

    def test_unknown_ablation_rejected(self):
        with pytest.raises(ValueError):
            train_ablation(small_pool(), "no-everything", n_steps=1)
