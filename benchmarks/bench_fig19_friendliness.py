"""Figs. 19 & 28 — TCP-friendliness vs 3 and 7 Cubic flows.

48 Mbps, 40 ms mRTT, BDP buffer. The pool only ever contained two-flow
scenarios, so this probes generalization to more competitors. Paper shape:
Sage neither starves (Indigo's failure) nor bullies (Aurora's failure);
Cubic-vs-Cubics is the fair reference.
"""

from conftest import SCALE, once

from repro.evalx.dynamics import friendliness_experiment
from repro.evalx.leagues import Participant

DUR = {"tiny": 20.0, "small": 40.0, "full": 120.0}[SCALE]
COUNTS = {"tiny": (3,), "small": (3, 7), "full": (3, 7)}[SCALE]


def test_fig19_friendliness(benchmark, sage_agent):
    def run():
        out = {}
        for n in COUNTS:
            for p in (
                Participant.from_agent(sage_agent),
                Participant.from_scheme("cubic"),
                Participant.from_scheme("bbr2"),
            ):
                out[(p.name, n)] = friendliness_experiment(
                    p, n_cubic=n, bw_mbps=48.0, min_rtt=0.040, duration=DUR
                )
        return out

    results = once(benchmark, run)
    print("\n=== Fig. 19/28: throughput vs N cubic flows ===")
    for (name, n), res in results.items():
        mine = res.flow_stats[0].avg_throughput_bps / 1e6
        others = [s.avg_throughput_bps / 1e6 for s in res.flow_stats[1:]]
        fair = 48.0 / (n + 1)
        print(
            f"{name:>8} vs {n} cubics: mine={mine:5.2f} Mbps "
            f"(fair={fair:5.2f})  cubics=" + " ".join(f"{o:5.2f}" for o in others)
        )
    for n in COUNTS:
        fair = 48e6 / (n + 1)
        mine = results[("sage", n)].flow_stats[0].avg_throughput_bps
        # neither starved nor hogging (paper's qualitative criterion)
        assert 0.1 * fair < mine < 3.5 * fair
