"""Unit tests for the AQM disciplines."""

import pytest

from repro.netsim.aqm import (
    BoDe,
    CoDel,
    FQCoDel,
    HeadDrop,
    LearnedECN,
    PIE,
    TailDrop,
    make_aqm,
)
from repro.netsim.packet import Packet


def pkt(seq=0, size=1500, flow=0, ect=False):
    p = Packet(flow_id=flow, seq=seq, size=size)
    p.ect = ect
    return p


def jain(values):
    total = sum(values)
    return total * total / (len(values) * sum(v * v for v in values))


class TestTailDrop:
    def test_admits_until_full(self):
        q = TailDrop(capacity_bytes=3000)
        assert q.enqueue(pkt(0), 0.0)
        assert q.enqueue(pkt(1), 0.0)
        assert not q.enqueue(pkt(2), 0.0)
        assert q.drops == 1
        assert len(q) == 2

    def test_dequeue_fifo(self):
        q = TailDrop(capacity_bytes=10_000)
        for i in range(3):
            q.enqueue(pkt(i), 0.0)
        assert [q.dequeue(0.0).seq for _ in range(3)] == [0, 1, 2]

    def test_dequeue_empty_returns_none(self):
        assert TailDrop(1500).dequeue(0.0) is None

    def test_bytes_accounting(self):
        q = TailDrop(capacity_bytes=10_000)
        q.enqueue(pkt(0, size=1000), 0.0)
        q.enqueue(pkt(1, size=500), 0.0)
        assert q.bytes_queued == 1500
        q.dequeue(0.0)
        assert q.bytes_queued == 500

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TailDrop(0)


class TestHeadDrop:
    def test_evicts_oldest_on_overflow(self):
        q = HeadDrop(capacity_bytes=3000)
        q.enqueue(pkt(0), 0.0)
        q.enqueue(pkt(1), 0.0)
        assert q.enqueue(pkt(2), 0.0)  # arrival admitted, head dropped
        assert q.drops == 1
        assert q.dequeue(0.0).seq == 1

    def test_queue_never_exceeds_capacity(self):
        q = HeadDrop(capacity_bytes=4500)
        for i in range(10):
            q.enqueue(pkt(i), 0.0)
        assert q.bytes_queued <= 4500


class TestCoDel:
    def test_no_drops_below_target(self):
        q = CoDel(capacity_bytes=100_000, target=0.005, interval=0.1)
        now = 0.0
        for i in range(50):
            q.enqueue(pkt(i), now)
            got = q.dequeue(now + 0.001)  # sojourn 1 ms < 5 ms target
            assert got is not None
            now += 0.002
        assert q.drops == 0

    def test_drops_after_sustained_delay(self):
        q = CoDel(capacity_bytes=1_000_000, target=0.005, interval=0.05)
        # Fill the queue, then dequeue slowly so sojourn stays high.
        for i in range(200):
            q.enqueue(pkt(i), 0.0)
        now = 0.2
        delivered = 0
        for _ in range(200):
            got = q.dequeue(now)
            if got is not None:
                delivered += 1
            now += 0.01
        assert q.drops > 0
        assert delivered > 0  # it does not drop everything

    def test_hard_overflow_still_tail_drops(self):
        q = CoDel(capacity_bytes=1500)
        assert q.enqueue(pkt(0), 0.0)
        assert not q.enqueue(pkt(1), 0.0)


class TestPIE:
    def test_no_drops_when_queue_small(self):
        q = PIE(capacity_bytes=100_000)
        q.current_rate_bps = 10e6
        accepted = sum(q.enqueue(pkt(i), i * 0.001) for i in range(3))
        assert accepted == 3

    def test_drop_probability_rises_with_standing_queue(self):
        q = PIE(capacity_bytes=10_000_000, target=0.005)
        q.current_rate_bps = 1e6  # slow link -> big queueing delay
        now = 0.0
        for i in range(2000):
            q.enqueue(pkt(i), now)
            now += 0.005
            if i % 10 == 0 and len(q):
                q.dequeue(now)
        assert q._p > 0.0
        assert q.drops > 0

    def test_deterministic_given_seed(self):
        def run(seed):
            q = PIE(capacity_bytes=1_000_000, seed=seed)
            q.current_rate_bps = 1e6
            now = 0.0
            outcome = []
            for i in range(500):
                outcome.append(q.enqueue(pkt(i), now))
                now += 0.005
            return outcome

        assert run(7) == run(7)


class TestBoDe:
    def test_bounds_delay(self):
        q = BoDe(capacity_bytes=10_000_000, delay_bound=0.02)
        q.current_rate_bps = 12e6  # 0.02 s == 30 KB at 12 Mbps
        admitted = 0
        for i in range(100):
            if q.enqueue(pkt(i), 0.0):
                admitted += 1
        assert q.bytes_queued * 8.0 / 12e6 <= 0.02 + 1e-9
        assert admitted < 100

    def test_admits_when_under_bound(self):
        q = BoDe(capacity_bytes=1_000_000, delay_bound=1.0)
        q.current_rate_bps = 100e6
        assert q.enqueue(pkt(0), 0.0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("taildrop", TailDrop),
            ("tdrop", TailDrop),
            ("headdrop", HeadDrop),
            ("hdrop", HeadDrop),
            ("codel", CoDel),
            ("pie", PIE),
            ("bode", BoDe),
        ],
    )
    def test_make_aqm(self, name, cls):
        assert isinstance(make_aqm(name, 10_000), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_aqm("red", 10_000)

    def test_case_insensitive(self):
        assert isinstance(make_aqm("CoDel", 10_000), CoDel)

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("fq_codel", FQCoDel),
            ("fqcodel", FQCoDel),
            ("learned_ecn", LearnedECN),
        ],
    )
    def test_intelligent_queue_registry(self, name, cls):
        assert isinstance(make_aqm(name, 30_000), cls)

    def test_checkpoint_suffix_only_for_learned_ecn(self):
        with pytest.raises(ValueError, match="learned_ecn"):
            make_aqm("codel@/tmp/model.npz", 30_000)


class TestEcnCounters:
    def test_all_disciplines_expose_ecn_marks(self):
        for name in ("taildrop", "headdrop", "codel", "pie", "bode", "fq_codel"):
            q = make_aqm(name, 30_000)
            assert q.ecn_marks == 0

    def test_taildrop_step_marks_ect_above_threshold(self):
        q = TailDrop(capacity_bytes=30_000, ecn_threshold_bytes=3000)
        q.enqueue(pkt(0, ect=True), 0.0)
        q.enqueue(pkt(1, ect=True), 0.0)
        assert q.ecn_marks == 0
        assert q.enqueue(pkt(2, ect=True), 0.0)  # backlog 3000 >= threshold
        assert q.ecn_marks == 1
        assert q.drops == 0

    def test_taildrop_does_not_mark_non_ect(self):
        q = TailDrop(capacity_bytes=30_000, ecn_threshold_bytes=1500)
        q.enqueue(pkt(0), 0.0)
        q.enqueue(pkt(1), 0.0)
        assert q.ecn_marks == 0

    def test_ce_marks_alias(self):
        q = TailDrop(capacity_bytes=30_000, ecn_threshold_bytes=1500)
        q.enqueue(pkt(0, ect=True), 0.0)
        q.enqueue(pkt(1, ect=True), 0.0)
        assert q.ce_marks == q.ecn_marks == 1

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            TailDrop(30_000, ecn_threshold_bytes=0)


class TestFQCoDel:
    def test_sparse_flow_priority_closed_form(self):
        """RFC 8290 new-queue credit: a sparse arrival overtakes bulk backlog.

        The bulk flow holds its first new-flow quantum (1514 B covers one
        1500 B packet plus change, so two dequeues exhaust it). Once spent,
        the bulk queue rotates to the old list — and a freshly-arrived sparse
        flow lands on the new list, which DRR serves first.
        """
        q = FQCoDel(capacity_bytes=200_000, n_queues=32)
        for i in range(20):
            q.enqueue(pkt(i, size=1500, flow=0), 0.0)
        # Burn the bulk flow's new-queue quantum (1514 - 2*1500 < 0).
        assert q.dequeue(0.0).flow_id == 0
        assert q.dequeue(0.0).flow_id == 0
        q.enqueue(pkt(0, size=200, flow=1), 0.0)
        nxt = q.dequeue(0.0)
        assert nxt.flow_id == 1  # sparse packet jumps the 18-packet backlog
        assert q.dequeue(0.0).flow_id == 0  # then bulk resumes

    def test_drr_fairness_across_bulk_flows(self):
        """Equal-size bulk flows drain at equal rates: Jain index ~= 1."""
        q = FQCoDel(capacity_bytes=1_000_000, n_queues=32)
        n_flows, per_flow = 4, 30
        for i in range(per_flow):
            for f in range(n_flows):
                q.enqueue(pkt(i, size=1500, flow=f), 0.0)
        served = {f: 0 for f in range(n_flows)}
        for _ in range(n_flows * per_flow // 2):  # drain half the backlog
            got = q.dequeue(0.0)
            served[got.flow_id] += 1
        assert jain(list(served.values())) > 0.99

    def test_overflow_evicts_from_fattest_queue(self):
        q = FQCoDel(capacity_bytes=6000, n_queues=32)
        for i in range(4):
            q.enqueue(pkt(i, size=1500, flow=0), 0.0)  # buffer now full
        assert q.enqueue(pkt(0, size=200, flow=1), 0.0)  # sparse still admitted
        assert q.drops == 1  # the eviction came out of flow 0's backlog
        flows = []
        while True:
            got = q.dequeue(0.0)
            if got is None:
                break
            flows.append(got.flow_id)
        assert flows.count(0) == 3  # one bulk packet was evicted
        assert flows.count(1) == 1

    def test_ect_traffic_marked_not_dropped(self):
        """Under sustained delay, CoDel signals land as CE marks on ECT flows."""
        q = FQCoDel(capacity_bytes=1_000_000, target=0.005, interval=0.05)
        for i in range(200):
            q.enqueue(pkt(i, ect=True), 0.0)
        now = 0.2
        delivered = 0
        for _ in range(200):
            if q.dequeue(now) is not None:
                delivered += 1
            now += 0.01
        assert q.ecn_marks > 0
        assert q.drops == 0
        assert delivered == 200  # every signalled packet survived as a mark

    def test_non_ect_traffic_dropped_under_sustained_delay(self):
        q = FQCoDel(capacity_bytes=1_000_000, target=0.005, interval=0.05)
        for i in range(200):
            q.enqueue(pkt(i), 0.0)
        now = 0.2
        for _ in range(200):
            q.dequeue(now)
            now += 0.01
        assert q.drops > 0
        assert q.ecn_marks == 0

    def test_len_counts_all_subqueues(self):
        q = FQCoDel(capacity_bytes=100_000)
        for f in range(5):
            q.enqueue(pkt(0, flow=f), 0.0)
        assert len(q) == 5
        q.dequeue(0.0)
        assert len(q) == 4

    def test_params_pinned(self):
        q = FQCoDel(capacity_bytes=100_000, n_queues=16, quantum=3000)
        p = q.params()
        assert p["n_queues"] == 16 and p["quantum"] == 3000

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            FQCoDel(100_000, n_queues=0)
        with pytest.raises(ValueError):
            FQCoDel(100_000, quantum=0)


class TestLearnedECNFallback:
    def test_threshold_mode_marks_ect(self):
        q = LearnedECN(capacity_bytes=15_000, threshold_frac=0.35)
        now = 0.0
        for i in range(6):
            q.enqueue(pkt(i, ect=True), now)
            now += 0.001
        # occupancy crosses 0.35 after ~4 packets; later ECT arrivals marked
        assert q.ecn_marks > 0
        assert q.drops == 0

    def test_threshold_mode_drops_non_ect(self):
        q = LearnedECN(capacity_bytes=15_000, threshold_frac=0.35)
        now = 0.0
        for i in range(8):
            q.enqueue(pkt(i), now)
            now += 0.001
        assert q.drops > 0
        assert q.ecn_marks == 0

    def test_seed_deterministic(self):
        def run(seed):
            q = LearnedECN(capacity_bytes=15_000, seed=seed)
            now = 0.0
            outcome = []
            for i in range(50):
                outcome.append(q.enqueue(pkt(i, ect=(i % 2 == 0)), now))
                if i % 3 == 0:
                    q.dequeue(now + 0.0005)
                now += 0.001
            return outcome, q.drops, q.ecn_marks

        assert run(11) == run(11)
        # And the LCG state actually matters: mark/drop totals move with seed
        # only when decisions are probabilistic; threshold mode is invariant.
        assert run(11) == run(99)  # fallback is a deterministic step

    def test_rejects_bad_threshold_frac(self):
        with pytest.raises(ValueError):
            LearnedECN(15_000, threshold_frac=0.0)

    def test_params_report_mode(self):
        q = LearnedECN(capacity_bytes=15_000)
        assert q.params()["mode"] == "threshold"


class TestPIEEdgeCases:
    def test_zero_rate_link_delay_estimate_is_finite(self):
        q = PIE(capacity_bytes=100_000)
        q.current_rate_bps = 0.0
        q.enqueue(pkt(0), 0.0)
        est = q.queue_delay_estimate()
        assert est == pytest.approx(1500 * 8.0 / 1e3)  # floor rate, not inf

    def test_zero_rate_link_still_updates_probability(self):
        q = PIE(capacity_bytes=10_000_000)
        q.current_rate_bps = 0.0
        now = 0.0
        for i in range(500):
            q.enqueue(pkt(i), now)
            now += 0.005
        assert 0.0 <= q._p <= 1.0  # no NaN/inf poisoning the controller

    def test_burst_larger_than_capacity(self):
        q = PIE(capacity_bytes=4500)
        admitted = sum(q.enqueue(pkt(i), 0.0) for i in range(10))
        assert admitted == 3
        assert q.drops == 7
        assert q.bytes_queued <= q.capacity_bytes

    def test_queue_delay_estimate_empty_queue(self):
        q = PIE(capacity_bytes=100_000)
        assert q.queue_delay_estimate() == 0.0


class TestBoDeEdgeCases:
    def test_zero_rate_link_uses_floor_rate(self):
        q = BoDe(capacity_bytes=1_000_000, delay_bound=0.02)
        q.current_rate_bps = 0.0
        # At the 1 kbps floor even one packet projects way over the bound.
        assert not q.enqueue(pkt(0), 0.0)
        assert q.drops == 1

    def test_burst_larger_than_capacity(self):
        q = BoDe(capacity_bytes=3000, delay_bound=10.0)
        q.current_rate_bps = 100e6
        admitted = sum(q.enqueue(pkt(i), 0.0) for i in range(10))
        assert admitted == 2
        assert q.bytes_queued <= q.capacity_bytes

    def test_queue_delay_estimate_empty_queue(self):
        q = BoDe(capacity_bytes=100_000)
        assert q.queue_delay_estimate() == 0.0
