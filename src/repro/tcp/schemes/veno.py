"""TCP Veno (Fu & Liew — IEEE JSAC 2003).

Uses the Vegas backlog estimate ``N = cwnd * (RTT - baseRTT) / RTT`` to
distinguish random (wireless) loss from congestive loss: when ``N < β``
(=3 packets) at loss time, the loss is deemed random and the window is only
reduced to 4/5; otherwise classic halving. The increase slows to every
other ACK once the backlog exceeds β.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Veno(CongestionControl):
    """Reno with a Vegas-informed loss discriminator."""

    name = "veno"

    BETA_PKTS = 3.0

    def __init__(self) -> None:
        self.base_rtt = float("inf")
        self.min_rtt_cycle = float("inf")
        self.backlog = 0.0
        self._inc_toggle = False

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt > 0:
            self.base_rtt = min(self.base_rtt, rtt)
            self.min_rtt_cycle = min(self.min_rtt_cycle, rtt)
            if rtt > 0 and self.base_rtt < float("inf"):
                expected = sock.cwnd / self.base_rtt
                actual = sock.cwnd / rtt
                self.backlog = (expected - actual) * self.base_rtt
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
            return
        if self.backlog < self.BETA_PKTS:
            self.reno_increase(sock, n_acked)
        else:
            # available bandwidth fully used: increase every other ACK
            self._inc_toggle = not self._inc_toggle
            if self._inc_toggle:
                self.reno_increase(sock, n_acked)

    def ssthresh(self, sock) -> float:
        if self.backlog < self.BETA_PKTS:
            # random loss: cut by 1/5 only
            return max(sock.cwnd * 0.8, self.MIN_CWND)
        return max(sock.cwnd / 2.0, self.MIN_CWND)
