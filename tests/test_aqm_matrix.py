"""Tests for the scheme x AQM winning-rate matrix and its env families."""

import json

import pytest

from repro.collector.environments import EnvConfig, aqm_environments, build_network
from repro.evalx.aqm_matrix import DEFAULT_MATRIX_AQMS, AqmMatrix, run_aqm_matrix
from repro.evalx.leagues import Participant
from repro.netsim.aqm import FQCoDel, LearnedECN, TailDrop


class TestAqmEnvironments:
    def test_family_shape(self):
        envs = aqm_environments("codel", bws=(24.0, 96.0))
        # the bw x rtt x buffer grid plus one cubic-friendliness env
        assert len(envs) == 3
        assert all(e.aqm == "codel" for e in envs)
        assert envs[-1].n_competing_cubic == 1
        assert envs[-1].env_id.endswith("-vs-cubic")

    def test_env_ids_unique_per_aqm(self):
        ids = [e.env_id for e in aqm_environments("fq_codel")]
        assert len(ids) == len(set(ids))
        assert all("fqcodel" in i for i in ids)

    def test_threshold_only_arms_taildrop(self):
        td = aqm_environments("taildrop", ecn_threshold_bdp=0.5)
        assert all(e.ecn_threshold_bdp == 0.5 for e in td)
        fq = aqm_environments("fq_codel", ecn_threshold_bdp=0.5)
        assert all(e.ecn_threshold_bdp == 0.0 for e in fq)

    def test_checkpoint_suffix_survives_into_envs(self):
        envs = aqm_environments("learned_ecn@/tmp/model.npz")
        assert all(e.aqm == "learned_ecn@/tmp/model.npz" for e in envs)
        assert all("@" not in e.env_id for e in envs)


class TestBuildNetworkAqm:
    def _env(self, aqm, threshold=0.0):
        return EnvConfig(
            env_id="t",
            kind="flat",
            bw_mbps=24.0,
            min_rtt=0.04,
            buffer_bdp=2.0,
            aqm=aqm,
            ecn_threshold_bdp=threshold,
        )

    def test_builds_each_registered_discipline(self):
        for aqm, cls in (
            ("taildrop", TailDrop),
            ("fq_codel", FQCoDel),
            ("learned_ecn", LearnedECN),
        ):
            _, network = build_network(self._env(aqm))
            assert isinstance(network.link.aqm, cls)

    def test_taildrop_threshold_armed(self):
        _, network = build_network(self._env("taildrop", threshold=0.5))
        q = network.link.aqm
        assert q.ecn_threshold_bytes is not None and q.ecn_threshold_bytes > 0

    def test_native_markers_accept_threshold_request(self):
        for aqm in ("fq_codel", "learned_ecn"):
            _, network = build_network(self._env(aqm, threshold=0.5))
            assert network.link.aqm.ecn_marks == 0  # built fine, marks natively

    def test_loss_only_aqm_rejects_threshold(self):
        with pytest.raises(ValueError, match="cannot honour"):
            build_network(self._env("codel", threshold=0.5))


class TestAqmMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_aqm_matrix(
            [Participant.from_scheme("cubic"), Participant.from_scheme("vegas")],
            aqms=("taildrop", "fq_codel"),
            duration=2.0,
            n_intervals=2,
        )

    def test_matrix_covers_grid(self, matrix):
        assert matrix.aqms == ["taildrop", "fq_codel"]
        assert sorted(matrix.participants) == ["cubic", "vegas"]
        for per_aqm in matrix.rates.values():
            for rate in per_aqm.values():
                assert 0.0 <= rate <= 1.0

    def test_entries_collected_per_column(self, matrix):
        assert all(len(matrix.entries[a]) > 0 for a in matrix.aqms)

    def test_format_table_lists_everything(self, matrix):
        table = matrix.format_table()
        for name in ("cubic", "vegas", "taildrop", "fq_codel", "ce marks"):
            assert name in table

    def test_json_and_save_roundtrip(self, matrix, tmp_path):
        path = tmp_path / "out" / "aqm_matrix.json"
        matrix.save(path)
        loaded = json.loads(path.read_text())
        assert loaded["schema_version"] == 1
        assert loaded["aqms"] == matrix.aqms
        assert set(loaded["rates"]) == set(matrix.rates)
        assert set(loaded["ecn_marks"]) == set(matrix.rates)

    def test_default_panel_includes_intelligent_queues(self):
        assert "fq_codel" in DEFAULT_MATRIX_AQMS
        assert "learned_ecn" in DEFAULT_MATRIX_AQMS

    def test_empty_aqm_list_rejected(self):
        with pytest.raises(ValueError):
            run_aqm_matrix([Participant.from_scheme("cubic")], aqms=())

    def test_checkpoint_column_label_strips_suffix(self):
        m = AqmMatrix(rates={"learned_ecn": {"cubic": 1.0}})
        assert m.aqms == ["learned_ecn"]
