"""The General Representation (GR) unit.

The GR unit treats every CC scheme as a black box: it periodically samples
*raw* transport-layer signals (delay-, throughput-, and loss-oriented) from
the sender socket, computes avg/min/max statistics over three observation
windows (Small / Medium / Large), and represents the scheme's output as the
congestion-window ratio ``a_t = cwnd_t / cwnd_{t-1}``.

The resulting 69-element state vector follows Table 1 of the paper exactly;
:data:`STATE_FIELDS` lists the elements in order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

import numpy as np

from repro.netsim.packet import MSS_BYTES
from repro.tcp.socket import TcpSender


@dataclass
class WindowConfig:
    """Observation-window lengths, in GR ticks (Section 7.4).

    The paper's ablation rebuilds pools with a single window of 10 / 200 /
    1000 ticks (Sage-s / Sage-m / Sage-l); default Sage uses all three.
    """

    small: int = 10
    medium: int = 200
    large: int = 1000

    def __post_init__(self) -> None:
        if not (0 < self.small <= self.medium <= self.large):
            raise ValueError(
                f"windows must satisfy 0 < small <= medium <= large, got "
                f"{self.small}/{self.medium}/{self.large}"
            )


def _field_block(prefix: str) -> List[str]:
    return [
        f"{prefix}_{w}.{s}"
        for w in ("s", "m", "l")
        for s in ("avg", "min", "max")
    ]


#: The 69 input statistics, in Table-1 order.
STATE_FIELDS: List[str] = (
    ["srtt", "rttvar", "thr", "ca_state"]
    + _field_block("rtt")
    + _field_block("thr")
    + _field_block("rtt_rate")
    + _field_block("rtt_var")
    + _field_block("inflight")
    + _field_block("lost")
    + [
        "time_delta",
        "rtt_rate",
        "loss_db",
        "acked_rate",
        "dr_ratio",
        "bdp_cwnd",
        "dr",
        "cwnd_unacked_rate",
        "dr_max",
        "dr_max_ratio",
        "pre_act",
    ]
)

STATE_DIM = len(STATE_FIELDS)
assert STATE_DIM == 69, f"Table 1 defines 69 inputs, got {STATE_DIM}"

#: Index ranges used by the Fig. 12 input ablations.
MINMAX_INDICES = [
    i for i, f in enumerate(STATE_FIELDS) if f.endswith(".min") or f.endswith(".max")
]
RTTVAR_RATE_INDICES = [  # "rows 23-40": rtt_rate_* and rtt_var_* blocks
    i
    for i, f in enumerate(STATE_FIELDS)
    if f.startswith("rtt_rate_") or f.startswith("rtt_var_")
]
LOSS_INFLIGHT_INDICES = [  # "rows 41-58": inflight_* and lost_* blocks
    i
    for i, f in enumerate(STATE_FIELDS)
    if f.startswith("inflight_") or f.startswith("lost_")
]


def _stats(window: Deque[float]) -> List[float]:
    if not window:
        return [0.0, 0.0, 0.0]
    mn, mx, total = float("inf"), float("-inf"), 0.0
    for v in window:
        if v < mn:
            mn = v
        if v > mx:
            mx = v
        total += v
    return [total / len(window), mn, mx]


class GRUnit:
    """Samples one sender socket into Table-1 state vectors and actions.

    Call :meth:`tick` once per control interval; it returns the current
    69-dim state (raw units) and the action ``cwnd_t / cwnd_{t-1}``.
    """

    def __init__(self, sender: TcpSender, windows: WindowConfig = None) -> None:
        self.sender = sender
        self.windows = windows if windows is not None else WindowConfig()
        w = self.windows
        self._rtt: Deque[float] = deque(maxlen=w.large)
        self._thr: Deque[float] = deque(maxlen=w.large)
        self._rtt_rate: Deque[float] = deque(maxlen=w.large)
        self._rtt_var: Deque[float] = deque(maxlen=w.large)
        self._inflight: Deque[float] = deque(maxlen=w.large)
        self._lost: Deque[float] = deque(maxlen=w.large)
        self._last_tick_time = None
        self._last_cwnd = max(sender.cwnd, 1.0)
        self._last_rtt = 0.0
        self._last_dr = 0.0
        self._last_dr_max = 0.0
        self._last_lost_bytes = 0
        self._last_delivered = 0
        self._last_action = 1.0

    # ------------------------------------------------------------------
    def _window_view(self, dq: Deque[float], n: int) -> Deque[float]:
        if len(dq) <= n:
            return dq
        return deque(list(dq)[-n:])

    def _blocks(self, dq: Deque[float]) -> List[float]:
        w = self.windows
        out: List[float] = []
        for n in (w.small, w.medium, w.large):
            out.extend(_stats(self._window_view(dq, n)))
        return out

    # ------------------------------------------------------------------
    def tick(self) -> tuple:
        """Sample the socket; returns ``(state_vector, action)``.

        The action is the cwnd ratio *since the previous tick* — i.e. what
        the underlying scheme did during the last interval, which is exactly
        the paper's generalized output representation.
        """
        s = self.sender
        now = s.loop.now

        srtt = s.srtt_or_min
        rttvar = s.rttvar
        thr = s.delivery_rate
        min_rtt = s.min_rtt if s.min_rtt != float("inf") else srtt

        rtt_rate = srtt / self._last_rtt if self._last_rtt > 0 else 1.0
        new_lost_bytes = s.lost_bytes - self._last_lost_bytes
        new_delivered = s.delivered - self._last_delivered
        time_delta_raw = (
            now - self._last_tick_time if self._last_tick_time is not None else 0.0
        )
        time_delta = time_delta_raw / max(min_rtt, 1e-3)
        loss_db = new_lost_bytes / max(time_delta_raw, 1e-6) if time_delta_raw else 0.0
        acked_rate = (
            new_delivered / max(time_delta_raw, 1e-6) if time_delta_raw else 0.0
        )
        dr = s.delivery_rate
        dr_ratio = dr / self._last_dr if self._last_dr > 0 else 1.0
        dr_max = s.max_delivery_rate
        dr_max_ratio = dr_max / self._last_dr_max if self._last_dr_max > 0 else 1.0
        bdp_pkts = (
            dr * max(min_rtt, 1e-4) / (8.0 * MSS_BYTES) if dr > 0 else 0.0
        )
        bdp_cwnd = bdp_pkts / max(s.cwnd, 1.0)
        cwnd_unacked_rate = s.inflight / max(s.sent_packets, 1)

        # -- push per-tick raw samples into the windows --
        self._rtt.append(srtt)
        self._thr.append(thr)
        self._rtt_rate.append(rtt_rate)
        self._rtt_var.append(rttvar)
        self._inflight.append(float(s.inflight_bytes))
        self._lost.append(float(new_lost_bytes))

        state = np.array(
            [srtt, rttvar, thr, float(s.ca_state)]
            + self._blocks(self._rtt)
            + self._blocks(self._thr)
            + self._blocks(self._rtt_rate)
            + self._blocks(self._rtt_var)
            + self._blocks(self._inflight)
            + self._blocks(self._lost)
            + [
                time_delta,
                rtt_rate,
                loss_db,
                acked_rate,
                dr_ratio,
                bdp_cwnd,
                dr,
                cwnd_unacked_rate,
                dr_max,
                dr_max_ratio,
                self._last_action,
            ],
            dtype=np.float64,
        )

        # -- output representation: cwnd ratio over the last interval --
        cwnd_now = max(s.cwnd, 1.0)
        action = cwnd_now / self._last_cwnd
        action = float(np.clip(action, 1.0 / 3.0, 3.0))

        self._last_cwnd = cwnd_now
        self._last_rtt = srtt if srtt > 0 else self._last_rtt
        self._last_dr = dr if dr > 0 else self._last_dr
        self._last_dr_max = dr_max if dr_max > 0 else self._last_dr_max
        self._last_lost_bytes = s.lost_bytes
        self._last_delivered = s.delivered
        self._last_tick_time = now
        self._last_action = action
        return state, action


# --------------------------------------------------------------------------
# Normalization: the network trains on dimensionless inputs. The scales are
# fixed constants (not data statistics) so a deployed model needs no
# dataset-side bookkeeping.
# --------------------------------------------------------------------------
_TIME_SCALE = 0.1  # seconds  -> srtt of 100 ms maps to 1.0
_RATE_SCALE = 48e6  # bits/s  -> 48 Mbps maps to 1.0
_BYTES_SCALE = 48e6 * 0.1 / 8  # one 100 ms BDP at 48 Mbps
_COUNT_RATE_SCALE = 4000.0  # packets/s


def _scales() -> np.ndarray:
    scale = np.ones(STATE_DIM)
    for i, f in enumerate(STATE_FIELDS):
        if f.startswith(("srtt", "rttvar", "rtt_s", "rtt_m", "rtt_l", "rtt_var")):
            scale[i] = _TIME_SCALE
        elif f.startswith(("thr", "dr", "loss_db")) and "ratio" not in f:
            scale[i] = _RATE_SCALE
        elif f.startswith(("inflight", "lost")):
            scale[i] = _BYTES_SCALE
        elif f == "acked_rate":
            scale[i] = _COUNT_RATE_SCALE
        # ratios, ca_state, time_delta, pre_act stay at 1.0
    return scale


_STATE_SCALES = _scales()


def normalize_state(state: np.ndarray) -> np.ndarray:
    """Scale a raw Table-1 state vector (or batch) to O(1) magnitudes."""
    out = np.asarray(state, dtype=np.float64) / _STATE_SCALES
    return np.clip(out, -10.0, 10.0)
