"""Throughput of the fused CRR training engine.

Times the legacy per-timestep :class:`CRRTrainer` against the fused
:class:`FastCRRTrainer` on the same pool at the default training
configuration (batch 16, seq 8), runs the same-seed equivalence check,
measures the data-parallel worker-scaling curve (steps/sec and gradient
communication seconds per step for 1, 2 and 4 gradient workers, with a
bitwise cross-worker-count identity check), and writes the result to
``BENCH_train.json``.

Runs two ways:

- standalone: ``PYTHONPATH=src python benchmarks/bench_train_throughput.py``
  (``--tiny`` for a seconds-scale CI smoke run on a synthetic pool;
  the default collects the mini-scale pool first);
- under pytest-benchmark with the rest of the bench suite:
  ``pytest benchmarks/bench_train_throughput.py``.

The ISSUE target — fused >=3x steps/sec at the default configuration on the
mini pool — is asserted only at full scale; the tiny run just guards that
the fused engine never loses to the legacy one and stays within the
equivalence tolerance.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.collector.gr_unit import STATE_DIM  # noqa: E402
from repro.collector.pool import PolicyPool, Trajectory  # noqa: E402
from repro.train.bench import (  # noqa: E402
    format_report,
    run_train_bench,
    write_report,
)

OUT_PATH = REPO / "BENCH_train.json"


def synthetic_pool(seed: int = 0, n_traj: int = 8, length: int = 48) -> PolicyPool:
    """A cheap stand-in pool so the tiny run skips simulation entirely."""
    rng = np.random.default_rng(seed)
    trajs = []
    for i in range(n_traj):
        states = rng.standard_normal((length, STATE_DIM)) * 0.1
        actions = rng.uniform(0.6, 1.8, size=length)
        rewards = np.exp(-10.0 * (actions - 1.1) ** 2)
        trajs.append(
            Trajectory(
                scheme=f"s{i}", env_id=f"e{i}", multi_flow=False,
                states=states, actions=actions, rewards=rewards,
            )
        )
    return PolicyPool(trajs)


def run_bench(tiny: bool = False, collect_workers: int = 1) -> dict:
    if tiny:
        return run_train_bench(
            pool=synthetic_pool(), steps=10, warmup=2, eq_steps=5,
            scaling_steps=6,
        )
    return run_train_bench(
        steps=30, warmup=3, eq_steps=10, collect_workers=collect_workers,
        scaling_steps=12,
    )


# --------------------------------------------------------------------------
# pytest-benchmark entry point
# --------------------------------------------------------------------------


def test_train_throughput(benchmark, policy_pool):
    from conftest import BENCH_CRR, BENCH_NET, once

    result = once(
        benchmark,
        lambda: run_train_bench(
            pool=policy_pool, steps=15, warmup=2, eq_steps=5,
            net_config=BENCH_NET, crr_config=BENCH_CRR,
            scaling_steps=6,
        ),
    )
    print(format_report(result))
    write_report(result, OUT_PATH)
    assert result["equivalence"]["within_tolerance"], (
        "fused engine diverged from the legacy trainer"
    )
    assert result["equivalence"]["rng_streams_identical"]
    # tiny scale on a shared runner: fusion must at least not lose
    assert result["speedup"] >= 1.0
    assert result["worker_scaling"]["bit_identical"], (
        "data-parallel results differ across worker counts"
    )


# --------------------------------------------------------------------------
# standalone entry point
# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="seconds-scale smoke run on a synthetic pool")
    parser.add_argument("--collect-workers", type=int, default=1,
                        dest="collect_workers",
                        help="rollout processes for mini-pool collection")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    result = run_bench(tiny=args.tiny, collect_workers=args.collect_workers)
    print(format_report(result))
    write_report(result, args.out)
    print(f"wrote {args.out}")
    if not result["equivalence"]["within_tolerance"]:
        print("ERROR: fused engine outside the equivalence tolerance",
              file=sys.stderr)
        return 1
    scaling = result.get("worker_scaling")
    if scaling and not scaling["bit_identical"]:
        print("ERROR: data-parallel results differ across worker counts",
              file=sys.stderr)
        return 1
    if not args.tiny and result["speedup"] < 3.0:
        print("WARNING: below the 3x target at the default configuration",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
