"""Network environments: Set I, Set II, and the env → simulator builder.

Appendix C of the paper defines the two environment sets:

- **Set I** (single-flow): *flat* scenarios with constant capacity drawn
  from [12, 192] Mbps, minRTT from [10, 160] ms, and buffer from
  [0.5, 16] x BDP; plus *step* scenarios where the capacity is multiplied by
  m in (0.25, 0.5, 2, 4) mid-experiment (capped below 200 Mbps).
- **Set II** (TCP-friendliness): the scheme under test shares the bottleneck
  with a TCP Cubic flow that starts first; buffers span [1, 16] x BDP.

The paper covers >1000 environments; the grids here are parameterized so a
laptop-scale reproduction uses a subsampled grid while the full grid remains
one argument away.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.netsim.aqm import make_aqm
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.netsim.traces import (
    FlatRate,
    RateProcess,
    StepRate,
    cellular_trace,
    internet_path_rate,
)


@dataclass(frozen=True)
class EnvConfig:
    """One network environment (one cell of the paper's evaluation grids)."""

    env_id: str
    kind: str  # "flat" | "step" | "cellular" | "internet"
    bw_mbps: float  # (initial) bottleneck capacity
    min_rtt: float  # propagation RTT, seconds
    buffer_bdp: float  # bottleneck buffer in multiples of the BDP
    step_m: float = 1.0  # capacity multiplier for step scenarios
    step_at: float = 0.0  # switch time for step scenarios
    n_competing_cubic: int = 0  # Set II: competing Cubic flows
    competitor_head_start: float = 2.0  # seconds Cubic runs alone first
    duration: float = 20.0
    aqm: str = "taildrop"
    trace_seed: int = 0
    #: optional ECN step-marking threshold, as a fraction of the BDP
    #: (taildrop only); enables DCTCP-style experiments.
    ecn_threshold_bdp: float = 0.0

    def __post_init__(self) -> None:
        if self.bw_mbps <= 0 or self.min_rtt <= 0 or self.buffer_bdp <= 0:
            raise ValueError(f"invalid environment parameters: {self}")
        if self.kind not in ("flat", "step", "cellular", "internet"):
            raise ValueError(f"unknown environment kind {self.kind!r}")

    # ------------------------------------------------------------------
    @property
    def bdp_bytes(self) -> float:
        return self.bw_mbps * 1e6 * self.min_rtt / 8.0

    @property
    def buffer_bytes(self) -> int:
        return max(int(self.buffer_bdp * self.bdp_bytes), 3 * 1500)

    @property
    def is_multi_flow(self) -> bool:
        return self.n_competing_cubic > 0

    def rate_process(self) -> RateProcess:
        if self.kind == "flat":
            return FlatRate(self.bw_mbps * 1e6)
        if self.kind == "step":
            return StepRate(self.bw_mbps * 1e6, self.step_m, self.step_at)
        if self.kind == "cellular":
            return cellular_trace(
                self.trace_seed, duration=self.duration, mean_mbps=self.bw_mbps
            )
        return internet_path_rate(
            self.trace_seed, self.bw_mbps, duration=self.duration
        )

    def mean_capacity_bps(self) -> float:
        return self.rate_process().mean_rate(self.duration)

    def fair_share_bps(self, n_flows: int) -> float:
        """Ideal per-flow fair share with ``n_flows`` total flows."""
        if n_flows <= 0:
            raise ValueError("need at least one flow")
        return self.mean_capacity_bps() / n_flows


def build_network(env: EnvConfig) -> Tuple[EventLoop, Network]:
    """Instantiate the simulator for one environment."""
    loop = EventLoop()
    if env.ecn_threshold_bdp > 0:
        if env.aqm.lower() not in ("taildrop", "tdrop"):
            raise ValueError("ECN marking is only supported on taildrop queues")
        threshold = max(int(env.ecn_threshold_bdp * env.bdp_bytes), 1500)
        aqm = make_aqm(env.aqm, env.buffer_bytes, ecn_threshold_bytes=threshold)
    else:
        aqm = make_aqm(env.aqm, env.buffer_bytes)
    network = Network(loop, env.rate_process(), aqm)
    return loop, network


# --------------------------------------------------------------------------
# Environment grids
# --------------------------------------------------------------------------

#: Appendix C parameter ranges (values chosen inside the paper's ranges;
#: rates above ~100 Mbps are omitted from the default grid purely for
#: simulation speed — the ranges themselves are arguments below).
_DEFAULT_BWS = (12.0, 24.0, 48.0, 96.0)
_DEFAULT_RTTS = (0.010, 0.040, 0.160)
_DEFAULT_BUFS_SET1 = (0.5, 2.0, 8.0)
_DEFAULT_BUFS_SET2 = (1.0, 4.0, 16.0)
_STEP_MS = (0.25, 0.5, 2.0, 4.0)


def set1_environments(
    bws: Tuple[float, ...] = _DEFAULT_BWS,
    rtts: Tuple[float, ...] = _DEFAULT_RTTS,
    buffers: Tuple[float, ...] = _DEFAULT_BUFS_SET1,
    step_ms: Tuple[float, ...] = _STEP_MS,
    duration: float = 20.0,
    include_steps: bool = True,
) -> List[EnvConfig]:
    """Set I: single-flow flat + step scenarios (Appendix C.1)."""
    envs: List[EnvConfig] = []
    for bw, rtt, buf in itertools.product(bws, rtts, buffers):
        envs.append(
            EnvConfig(
                env_id=f"set1-flat-bw{bw:g}-rtt{rtt * 1000:g}-q{buf:g}",
                kind="flat",
                bw_mbps=bw,
                min_rtt=rtt,
                buffer_bdp=buf,
                duration=duration,
            )
        )
    if include_steps:
        for bw, rtt, m in itertools.product(bws, rtts, step_ms):
            if bw * m >= 200.0:  # the paper keeps step targets under 200 Mbps
                continue
            envs.append(
                EnvConfig(
                    env_id=f"set1-step-bw{bw:g}-m{m:g}-rtt{rtt * 1000:g}",
                    kind="step",
                    bw_mbps=bw,
                    min_rtt=rtt,
                    buffer_bdp=2.0,
                    step_m=m,
                    step_at=duration / 2.0,
                    duration=duration,
                )
            )
    return envs


def set2_environments(
    bws: Tuple[float, ...] = _DEFAULT_BWS,
    rtts: Tuple[float, ...] = _DEFAULT_RTTS,
    buffers: Tuple[float, ...] = _DEFAULT_BUFS_SET2,
    duration: float = 30.0,
) -> List[EnvConfig]:
    """Set II: the scheme under test vs a head-start TCP Cubic flow."""
    envs: List[EnvConfig] = []
    for bw, rtt, buf in itertools.product(bws, rtts, buffers):
        envs.append(
            EnvConfig(
                env_id=f"set2-bw{bw:g}-rtt{rtt * 1000:g}-q{buf:g}",
                kind="flat",
                bw_mbps=bw,
                min_rtt=rtt,
                buffer_bdp=buf,
                n_competing_cubic=1,
                duration=duration,
            )
        )
    return envs


def training_environments(scale: str = "mini") -> List[EnvConfig]:
    """The pool-collection grid at three sizes.

    ``mini``  — a handful of envs, for tests (seconds).
    ``small`` — the default bench grid (minutes).
    ``full``  — the paper-faithful dense grid (hours on one core).
    """
    if scale == "mini":
        return (
            set1_environments(
                bws=(24.0,), rtts=(0.04,), buffers=(2.0,),
                step_ms=(0.5, 2.0), duration=10.0,
            )
            + set2_environments(
                bws=(24.0,), rtts=(0.04,), buffers=(2.0,), duration=12.0
            )
        )
    if scale == "small":
        return (
            set1_environments(
                bws=(12.0, 24.0, 48.0), rtts=(0.02, 0.06), buffers=(1.0, 4.0),
                step_ms=(0.5, 2.0), duration=15.0,
            )
            + set2_environments(
                bws=(12.0, 24.0, 48.0), rtts=(0.02, 0.06), buffers=(2.0, 8.0),
                duration=20.0,
            )
        )
    if scale == "full":
        bws = (12.0, 24.0, 48.0, 96.0, 192.0)
        rtts = (0.010, 0.020, 0.040, 0.080, 0.160)
        return (
            set1_environments(
                bws=bws, rtts=rtts, buffers=(0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
                duration=30.0,
            )
            + set2_environments(
                bws=bws, rtts=rtts, buffers=(1.0, 2.0, 4.0, 8.0, 16.0),
                duration=60.0,
            )
        )
    raise ValueError(f"unknown scale {scale!r}; use mini/small/full")
