"""Store lifecycle operations: pack, merge, verify, stats.

These are the plumbing behind the ``repro pool`` CLI subcommands:

- :func:`pack_pool` — migrate a legacy monolithic ``.npz`` pool (or an
  in-memory :class:`PolicyPool`) into a sharded store;
- :func:`merge_stores` — concatenate several stores (e.g. per-worker shard
  dirs) into one, re-sharding at the target budget;
- :func:`verify` — re-exported shard audit with corrupt-shard quarantine;
- :func:`store_stats` — per-scheme transition counts plus the shard /
  checksum table.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence, Union

from repro.collector.pool import PolicyPool
from repro.datastore.manifest import Manifest, VerifyReport, verify_store
from repro.datastore.reader import ShardedPool
from repro.datastore.writer import DEFAULT_SHARD_BYTES, ShardWriter

__all__ = ["pack_pool", "merge_stores", "verify", "store_stats", "open_pool"]

PoolSource = Union[str, Path, PolicyPool, ShardedPool]


def open_pool(path) -> Union[PolicyPool, ShardedPool]:
    """Open either pool flavor: a store directory or a legacy ``.npz``."""
    path = Path(path)
    if path.is_dir():
        return ShardedPool.open(path)
    return PolicyPool.load(path)


def _iter_source(source: PoolSource):
    """Yield trajectories from any pool source, lazily where possible."""
    if isinstance(source, (str, Path)):
        source = open_pool(source)
    if isinstance(source, ShardedPool):
        yield from source.iter_trajectories()
    else:
        yield from source.trajectories


def pack_pool(
    source: PoolSource,
    out_dir,
    shard_bytes: int = DEFAULT_SHARD_BYTES,
) -> ShardedPool:
    """Convert ``source`` into a sharded store at ``out_dir``.

    Trajectory order is preserved, so sampling from the returned
    :class:`ShardedPool` is bit-identical to sampling the source pool with
    the same seed.
    """
    with ShardWriter(out_dir, shard_bytes=shard_bytes) as writer:
        for traj in _iter_source(source):
            writer.add(traj)
    return ShardedPool.open(out_dir)


def merge_stores(
    sources: Sequence[PoolSource],
    out_dir,
    shard_bytes: int = DEFAULT_SHARD_BYTES,
) -> ShardedPool:
    """Merge several stores / legacy pools into one store at ``out_dir``.

    Sources are concatenated in the order given (and in manifest order
    within each), one trajectory resident at a time.
    """
    if not sources:
        raise ValueError("need at least one source to merge")
    with ShardWriter(out_dir, shard_bytes=shard_bytes) as writer:
        for source in sources:
            for traj in _iter_source(source):
                writer.add(traj)
    return ShardedPool.open(out_dir)


def verify(root, quarantine: bool = True) -> VerifyReport:
    """Audit the store at ``root``; see :func:`~.manifest.verify_store`."""
    return verify_store(root, quarantine=quarantine)


def store_stats(root) -> str:
    """The ``pool stats`` report: summary + per-shard checksum table."""
    pool = ShardedPool.open(root)
    manifest = pool.manifest
    lines = [pool.summary(), ""]
    lines.append(
        f"{len(manifest.shards)} shard(s), schema v{manifest.schema_version}, "
        f"state_dim={manifest.state_dim}"
    )
    lines.append(f"{'shard':14s} {'trajs':>6s} {'rows':>10s} "
                 f"{'bytes':>12s} {'states crc32':>12s}")
    for shard in manifest.shards:
        total_bytes = sum(f.bytes for f in shard.files.values())
        lines.append(
            f"{shard.name:14s} {shard.n_trajectories:>6d} {shard.rows:>10d} "
            f"{total_bytes:>12d} {shard.files['states'].crc32:>#12x}"
        )
    return "\n".join(lines)
