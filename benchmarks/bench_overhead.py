"""Section 8 (footnote 11) — control-loop overhead.

The paper measures Sage's CPU overhead against Aurora (an online-RL design
with per-monitor-interval inference) and Copa (a per-ACK heuristic) while
driving a 200 Mbps link. Here we time the per-decision cost of each control
path: Sage's frozen-graph inference, the heuristics' per-ACK hooks, and
Vivace's utility bookkeeping.
"""

import time

import numpy as np

from conftest import BENCH_NET
from repro.collector.gr_unit import STATE_DIM
from repro.core.networks import FastPolicy, SagePolicy
from repro.tcp.cc_base import make_scheme


class _FakeSock:
    cwnd = 100.0
    ssthresh = 50.0
    srtt = 0.05
    srtt_or_min = 0.05
    min_rtt = 0.05
    rttvar = 0.001
    inflight = 100
    delivery_rate = 10e6
    max_delivery_rate = 12e6
    delivered = 1000
    lost = 0
    sent_packets = 1000


def _time_per_call(fn, n=2000):
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - t0) / n


def test_overhead_per_decision(benchmark):
    rng = np.random.default_rng(0)
    fast = FastPolicy(SagePolicy(BENCH_NET, rng))
    h = [fast.initial_state()]
    state = rng.standard_normal(STATE_DIM)

    def sage_step():
        ratio, h[0] = fast.step(state, h[0])
        return ratio

    results = {"sage (NN inference)": _time_per_call(sage_step, 500)}
    clock = [0.0]
    for name in ("cubic", "copa", "vivace"):
        cc = make_scheme(name)
        sock = _FakeSock()
        cc.on_init(sock)

        def hook(cc=cc, sock=sock):
            clock[0] += 0.001
            cc.on_ack(sock, 1, 0.05, clock[0])

        results[f"{name} (per-ACK hook)"] = _time_per_call(hook)

    sage_per_decision = benchmark(sage_step)
    print("\n=== Overhead: seconds per control decision ===")
    for name, t in results.items():
        print(f"  {name:>24}: {t * 1e6:8.2f} us")

    # the learned policy fits comfortably inside its 20 ms control tick
    assert results["sage (NN inference)"] < 0.020
    # the heuristics' per-ACK hooks stay orders of magnitude cheaper, but
    # they run per ACK, not per 20 ms; both loops are realtime-viable.
    assert results["cubic (per-ACK hook)"] < 1e-3
