"""Serving metrics: inference latency, batch sizes, fallback rates.

The serving engine records one sample per scheduler tick (one batched
forward) plus per-decision outcome counters. ``snapshot()`` renders the
JSON-able summary that ``BENCH_serve.json``, the CLI, and the harness
report.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

#: decision provenance labels, in reporting order
SOURCES = ("policy", "stale", "heuristic")


class ServingMetrics:
    """Rolling counters for one :class:`~repro.serve.engine.PolicyServer`."""

    __slots__ = ("latencies_s", "batch_hist", "sources", "ticks", "decisions",
                 "deadline_misses", "invalid_actions")

    def __init__(self) -> None:
        self.latencies_s: List[float] = []
        self.batch_hist: Dict[int, int] = {}
        self.sources: Dict[str, int] = {s: 0 for s in SOURCES}
        self.ticks = 0
        self.decisions = 0
        self.deadline_misses = 0  # ticks whose forward blew the budget
        self.invalid_actions = 0  # non-finite policy outputs caught pre-apply

    # ------------------------------------------------------------------
    def record_tick(
        self, batch_size: int, latency_s: float, missed_deadline: bool
    ) -> None:
        self.ticks += 1
        self.latencies_s.append(latency_s)
        self.batch_hist[batch_size] = self.batch_hist.get(batch_size, 0) + 1
        if missed_deadline:
            self.deadline_misses += 1

    def record_decision(self, source: str) -> None:
        self.sources[source] += 1
        self.decisions += 1

    # ------------------------------------------------------------------
    def latency_percentile_ms(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(self.latencies_s, q)) * 1e3

    @property
    def fallback_rate(self) -> float:
        """Fraction of decisions not served fresh from the policy."""
        if self.decisions == 0:
            return 0.0
        return (self.sources["stale"] + self.sources["heuristic"]) / self.decisions

    def snapshot(self) -> dict:
        """JSON-able summary of everything recorded so far."""
        return {
            "ticks": self.ticks,
            "decisions": self.decisions,
            "deadline_misses": self.deadline_misses,
            "invalid_actions": self.invalid_actions,
            "latency_p50_ms": round(self.latency_percentile_ms(50.0), 4),
            "latency_p99_ms": round(self.latency_percentile_ms(99.0), 4),
            "batch_hist": {str(k): v for k, v in sorted(self.batch_hist.items())},
            "sources": dict(self.sources),
            "fallback_rate": round(self.fallback_rate, 6),
        }
