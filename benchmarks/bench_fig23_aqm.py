"""Fig. 23 — robustness to AQM schemes.

48 Mbps, 20 ms mRTT, 240 KB buffer; HDrop / TDrop / PIE / BoDe / CoDel.
Paper shape: the learned policy's throughput varies little across AQMs,
while loss-based heuristics swing (deep standing queues under drop-tail,
clamped under CoDel/PIE/BoDe).
"""

import numpy as np

from conftest import once

from repro.evalx.dynamics import aqm_experiment
from repro.evalx.leagues import Participant


def test_fig23_aqm_robustness(benchmark, sage_agent):
    parts = [
        Participant.from_agent(sage_agent),
        Participant.from_scheme("cubic"),
        Participant.from_scheme("vegas"),
        Participant.from_scheme("bbr2"),
    ]

    def run():
        return aqm_experiment(parts, bw_mbps=48.0, min_rtt=0.020,
                              buffer_bytes=240_000, duration=10.0)

    out = once(benchmark, run)
    print("\n=== Fig. 23: throughput (Mbps) / owd (ms) per AQM ===")
    for name, per_aqm in out.items():
        row = "  ".join(
            f"{aqm}:{thr / 1e6:5.1f}/{owd * 1e3:5.1f}"
            for aqm, (thr, owd) in per_aqm.items()
        )
        print(f"{name:>8}  {row}")

    # cubic's delay is visibly clamped by the delay-bounding AQMs
    assert out["cubic"]["bode"][1] < out["cubic"]["taildrop"][1]
    # every participant keeps working under every AQM
    for per_aqm in out.values():
        for thr, _ in per_aqm.values():
            assert thr > 1e6
