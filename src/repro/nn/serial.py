"""Checkpointing: save/load a Module's parameter tree as ``.npz``."""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Dict

import numpy as np

from repro.nn.layers import Module


def save_params(module: Module, path) -> None:
    """Write a module's state dict to a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    # npz keys cannot contain '/', dots are fine.
    np.savez_compressed(path, **state)


def load_params(module: Module, path) -> None:
    """Load a state dict produced by :func:`save_params` into ``module``.

    Raises
    ------
    ValueError
        If the file is not a valid ``.npz`` archive (truncated download,
        interrupted save, ...) — names the offending file and how to rebuild
        it rather than surfacing a bare ``zipfile.BadZipFile``.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            state: Dict[str, np.ndarray] = {k: data[k] for k in data.files}
    except (zipfile.BadZipFile, EOFError, ValueError) as exc:
        # BadZipFile: zip magic present but archive truncated/corrupt.
        # ValueError: no zip magic at all (np.load mistakes it for a
        # legacy pickle). Either way the checkpoint is unusable.
        raise ValueError(
            f"checkpoint {path} is not a valid .npz archive ({exc}); "
            f"the file is corrupt or truncated — regenerate it (for the "
            f"shipped model: python tools/export_pretrained.py)"
        ) from exc
    module.load_state_dict(state)
