"""TCP-Illinois (Liu, Başar, Srikant — Performance Evaluation 2008).

A loss-*and*-delay scheme: losses still trigger backoff, but the AIMD
parameters are continuous functions of the average queueing delay ``da``:
the increase ``α`` falls from ``α_max`` (10) when the queue is empty to
``α_min`` (0.3) when it is full, and the decrease ``β`` rises from 1/8 to
1/2. Curve shapes follow the paper's ``α = κ1/(κ2 + da)`` family.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Illinois(CongestionControl):
    """Loss+delay AIMD with delay-adaptive parameters."""

    name = "illinois"

    ALPHA_MAX = 10.0
    ALPHA_MIN = 0.3
    BETA_MIN = 0.125
    BETA_MAX = 0.5
    WIN_THRESH = 15.0  # below this window, plain Reno

    def __init__(self) -> None:
        self.base_rtt = float("inf")
        self.max_rtt = 0.0
        self.sum_rtt = 0.0
        self.cnt_rtt = 0
        self.alpha = 1.0
        self.beta = self.BETA_MAX

    def _update_params(self, sock) -> None:
        if self.cnt_rtt == 0 or sock.cwnd < self.WIN_THRESH:
            self.alpha, self.beta = 1.0, self.BETA_MAX
            return
        avg_rtt = self.sum_rtt / self.cnt_rtt
        da = max(avg_rtt - self.base_rtt, 0.0)
        dm = max(self.max_rtt - self.base_rtt, 1e-6)
        # alpha = alpha_max at da <= dm/100, hyperbolic decay to alpha_min at dm
        d1 = dm / 100.0
        if da <= d1:
            self.alpha = self.ALPHA_MAX
        else:
            k2 = (dm - d1) / (self.ALPHA_MAX / self.ALPHA_MIN - 1.0)
            k1 = self.ALPHA_MAX * k2
            self.alpha = max(k1 / (k2 + (da - d1)), self.ALPHA_MIN)
        # beta: linear from BETA_MIN at da <= 0.1 dm to BETA_MAX at 0.8 dm
        d2, d3 = 0.1 * dm, 0.8 * dm
        if da <= d2:
            self.beta = self.BETA_MIN
        elif da >= d3:
            self.beta = self.BETA_MAX
        else:
            self.beta = self.BETA_MIN + (self.BETA_MAX - self.BETA_MIN) * (
                (da - d2) / (d3 - d2)
            )
        self.sum_rtt = 0.0
        self.cnt_rtt = 0

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt > 0:
            self.base_rtt = min(self.base_rtt, rtt)
            self.max_rtt = max(self.max_rtt, rtt)
            self.sum_rtt += rtt
            self.cnt_rtt += 1
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
            return
        if self.cnt_rtt >= max(sock.cwnd / 2.0, 2.0):
            self._update_params(sock)
        sock.cwnd += self.alpha * n_acked / max(sock.cwnd, 1.0)

    def ssthresh(self, sock) -> float:
        return max(sock.cwnd * (1.0 - self.beta), self.MIN_CWND)
