"""Gradient checks for the autograd engine (numerical differentiation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.autograd import Tensor, as_tensor, concat, no_grad, stack_rows


def numerical_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    g = np.zeros_like(x)
    for idx in np.ndindex(x.shape):
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        g[idx] = (f(xp) - f(xm)) / (2 * eps)
    return g


def check_grad(op, x: np.ndarray, atol=1e-5):
    t = Tensor(x, requires_grad=True)
    out = op(t).sum()
    out.backward()
    num = numerical_grad(lambda v: float(op(Tensor(v)).sum().data), x)
    np.testing.assert_allclose(t.grad, num, atol=atol, rtol=1e-4)


SMALL = arrays(np.float64, (3, 4), elements=st.floats(-2.0, 2.0, width=64))


class TestUnaryGrads:
    @given(x=SMALL)
    @settings(max_examples=10, deadline=None)
    def test_tanh(self, x):
        check_grad(lambda t: t.tanh(), x)

    @given(x=SMALL)
    @settings(max_examples=10, deadline=None)
    def test_sigmoid(self, x):
        check_grad(lambda t: t.sigmoid(), x)

    @given(x=SMALL)
    @settings(max_examples=10, deadline=None)
    def test_exp(self, x):
        check_grad(lambda t: t.exp(), x)

    def test_log(self):
        x = np.abs(np.random.default_rng(0).standard_normal((3, 4))) + 0.5
        check_grad(lambda t: t.log(), x)

    @given(x=SMALL)
    @settings(max_examples=10, deadline=None)
    def test_leaky_relu(self, x):
        # avoid the kink at exactly 0
        x = np.where(np.abs(x) < 1e-3, 0.1, x)
        check_grad(lambda t: t.leaky_relu(0.01), x)

    def test_pow(self):
        x = np.abs(np.random.default_rng(1).standard_normal((3, 4))) + 0.5
        check_grad(lambda t: t.pow(1.7), x)

    def test_sqrt(self):
        x = np.abs(np.random.default_rng(2).standard_normal((3,))) + 0.5
        check_grad(lambda t: t.sqrt(), x)


class TestBinaryGrads:
    def test_add_broadcast_bias(self):
        x = np.random.default_rng(0).standard_normal((3, 4))
        b = np.random.default_rng(1).standard_normal(4)
        tb = Tensor(b, requires_grad=True)
        (Tensor(x) + tb).sum().backward()
        np.testing.assert_allclose(tb.grad, np.full(4, 3.0))

    def test_mul_grads_both_sides(self):
        rng = np.random.default_rng(2)
        a_np, b_np = rng.standard_normal((2, 3)), rng.standard_normal((2, 3))
        a, b = Tensor(a_np, requires_grad=True), Tensor(b_np, requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b_np)
        np.testing.assert_allclose(b.grad, a_np)

    def test_matmul(self):
        rng = np.random.default_rng(3)
        a_np, w_np = rng.standard_normal((5, 3)), rng.standard_normal((3, 2))
        w = Tensor(w_np, requires_grad=True)
        out = (Tensor(a_np) @ w).sum()
        out.backward()
        num = numerical_grad(
            lambda v: float((a_np @ v).sum()), w_np
        )
        np.testing.assert_allclose(w.grad, num, atol=1e-5)

    def test_div(self):
        x = np.abs(np.random.default_rng(4).standard_normal((3,))) + 1.0
        check_grad(lambda t: as_tensor(2.0) / t, x)

    def test_sub_rsub(self):
        x = np.random.default_rng(5).standard_normal((3,))
        check_grad(lambda t: 1.0 - t, x)
        check_grad(lambda t: t - 1.0, x)


class TestReductionsAndShapes:
    def test_sum_axis(self):
        x = np.random.default_rng(0).standard_normal((3, 4))
        check_grad(lambda t: t.sum(axis=1), x)

    def test_mean(self):
        x = np.random.default_rng(1).standard_normal((3, 4))
        check_grad(lambda t: t.mean(axis=0), x)

    def test_reshape_routes_grads(self):
        x = np.random.default_rng(2).standard_normal((2, 6))
        check_grad(lambda t: t.reshape(3, 4).tanh(), x)

    def test_getitem(self):
        x = np.random.default_rng(3).standard_normal((4, 5))
        t = Tensor(x, requires_grad=True)
        t[1:3, :2].sum().backward()
        expected = np.zeros_like(x)
        expected[1:3, :2] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_concat_routes_grads(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        out = concat([a, b], axis=1)
        (out * Tensor(np.arange(10.0).reshape(2, 5))).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1, 2], [5, 6, 7]])
        np.testing.assert_allclose(b.grad, [[3, 4], [8, 9]])

    def test_stack_rows(self):
        xs = [Tensor(np.full(3, float(i)), requires_grad=True) for i in range(4)]
        stack_rows(xs).sum().backward()
        for t in xs:
            np.testing.assert_allclose(t.grad, np.ones(3))


class TestComposites:
    def test_log_softmax_grads(self):
        x = np.random.default_rng(0).standard_normal((3, 5))
        check_grad(lambda t: t.log_softmax(axis=-1), x)

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(1).standard_normal((4, 6))
        s = Tensor(x).softmax(axis=-1).data
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(4))

    def test_logsumexp_matches_numpy(self):
        x = np.random.default_rng(2).standard_normal((3, 5))
        got = Tensor(x).logsumexp(axis=-1).data
        want = np.log(np.exp(x).sum(axis=-1))
        np.testing.assert_allclose(got, want)

    def test_logsumexp_stable_for_large_inputs(self):
        x = np.array([[1000.0, 1000.0]])
        got = Tensor(x).logsumexp(axis=-1).data
        np.testing.assert_allclose(got, 1000.0 + np.log(2.0))

    def test_clip_grads_zero_outside(self):
        x = np.array([-2.0, 0.0, 2.0])
        t = Tensor(x, requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestGRUSeqBackward:
    """The fused GRU unroll is one graph node with a hand-written BPTT
    backward — check it against numerical differentiation and the
    per-step reference unroll."""

    def _gru(self, e=3, h=4, seed=0):
        from repro.nn.gru import GRU

        return GRU(e, h, np.random.default_rng(seed))

    def test_forward_matches_step_unroll(self):
        from repro.nn.autograd import stack_rows as stack

        gru = self._gru()
        x = np.random.default_rng(1).standard_normal((5, 2, 3))
        fused = gru.forward_seq(Tensor(x)).data
        outs, _ = gru.forward([Tensor(x[t]) for t in range(5)])
        ref = stack(outs).data
        np.testing.assert_allclose(fused, ref, rtol=1e-12, atol=1e-12)

    def test_input_grad_numerical(self):
        gru = self._gru()
        x = np.random.default_rng(2).standard_normal((4, 2, 3))
        t = Tensor(x, requires_grad=True)
        gru.forward_seq(t).sum().backward()
        num = numerical_grad(
            lambda v: float(gru.forward_seq(Tensor(v)).sum().data), x
        )
        np.testing.assert_allclose(t.grad, num, atol=1e-5, rtol=1e-4)

    def test_weight_and_bias_grads_numerical(self):
        gru = self._gru()
        x = np.random.default_rng(3).standard_normal((3, 2, 3))

        def loss():
            return gru.forward_seq(Tensor(x)).sum()

        loss().backward()
        for lin in (gru.wz, gru.wr, gru.wn):
            for p in (lin.W, lin.b):
                got = p.grad

                def f(v, p=p):
                    old = p.data
                    p.data = v
                    try:
                        return float(loss().data)
                    finally:
                        p.data = old

                num = numerical_grad(f, p.data)
                np.testing.assert_allclose(got, num, atol=1e-5, rtol=1e-4)

    def test_h0_grad_numerical(self):
        gru = self._gru()
        x = np.random.default_rng(4).standard_normal((3, 2, 3))
        h0 = np.random.default_rng(5).standard_normal((2, 4)) * 0.3
        t = Tensor(h0, requires_grad=True)
        gru.forward_seq(Tensor(x), h0=t).sum().backward()
        num = numerical_grad(
            lambda v: float(gru.forward_seq(Tensor(x), h0=Tensor(v)).sum().data),
            h0,
        )
        np.testing.assert_allclose(t.grad, num, atol=1e-5, rtol=1e-4)

    def test_no_grad_detaches(self):
        gru = self._gru()
        x = np.random.default_rng(6).standard_normal((3, 2, 3))
        with no_grad():
            out = gru.forward_seq(Tensor(x, requires_grad=True))
        assert not out.requires_grad


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t + t).sum().backward()
        np.testing.assert_allclose(t.grad, np.full(3, 2.0))

    def test_diamond_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        a = t * 3.0
        b = t * 5.0
        (a + b).sum().backward()
        np.testing.assert_allclose(t.grad, [8.0])

    def test_backward_on_nonscalar_requires_grad_arg(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_without_grad_flag_raises(self):
        t = Tensor(np.ones(1))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (t * 2.0).sum()
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        assert not t.detach().requires_grad
