"""Tests for the extended scheme set: DCTCP (+ECN), Scalable, Compound, LP."""

import numpy as np
import pytest

from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.netsim.traces import FlatRate
from repro.tcp.cc_base import make_scheme
from repro.tcp.flow import Flow


class FakeSock:
    def __init__(self, cwnd=100.0, ssthresh=50.0, srtt=0.05):
        self.cwnd = cwnd
        self.ssthresh = ssthresh
        self.srtt = srtt
        self.srtt_or_min = srtt
        self.min_rtt = srtt
        self.rttvar = 0.001
        self.inflight = int(cwnd)
        self.delivery_rate = 10e6
        self.max_delivery_rate = 12e6
        self.delivered = 1000
        self.lost = 0
        self.sent_packets = 1000


def run_flow(scheme, bw=24e6, rtt=0.02, buf=120_000, ecn_k=None, dur=8.0):
    loop = EventLoop()
    aqm = TailDrop(buf, ecn_threshold_bytes=ecn_k)
    net = Network(loop, FlatRate(bw), aqm)
    flow = Flow(net, 0, scheme, min_rtt=rtt)
    flow.start()
    t = 0.0
    while t < dur:
        t += 0.1
        loop.run_until(t)
        flow.sample()
    flow.stop()
    return flow, aqm


class TestEcnPlumbing:
    def test_non_ecn_flows_never_marked(self):
        flow, aqm = run_flow("cubic", ecn_k=30_000, dur=4.0)
        assert aqm.ce_marks == 0
        assert flow.sender.ecn_ce_acks == 0

    def test_dctcp_gets_marked_and_reacts(self):
        flow, aqm = run_flow("dctcp", ecn_k=30_000, dur=6.0)
        assert aqm.ce_marks > 0
        assert flow.sender.ecn_ce_acks > 0

    def test_ecn_threshold_validation(self):
        with pytest.raises(ValueError):
            TailDrop(10_000, ecn_threshold_bytes=0)


class TestDctcp:
    def test_keeps_queue_shallow(self):
        # with step marking at K, DCTCP's standing queue hugs K rather
        # than the full buffer
        flow, _ = run_flow("dctcp", ecn_k=30_000, buf=240_000, dur=8.0)
        max_queue_delay = 240_000 * 8 / 24e6  # 80 ms if the buffer filled
        assert flow.stats().avg_owd < 0.010 + 0.5 * max_queue_delay

    def test_still_utilizes_link(self):
        flow, _ = run_flow("dctcp", ecn_k=30_000, dur=8.0)
        assert flow.stats().avg_throughput_bps > 0.7 * 24e6

    def test_alpha_tracks_mark_fraction(self):
        cc = make_scheme("dctcp")
        sock = FakeSock(cwnd=10.0, ssthresh=5.0)
        # mark-free windows decay alpha geometrically toward zero
        for _ in range(400):
            cc.on_ack(sock, 5, 0.05, 0.0)
        assert cc.alpha < 0.2

    def test_proportional_cut(self):
        cc = make_scheme("dctcp")
        sock = FakeSock(cwnd=100.0, ssthresh=50.0)
        cc.alpha = 0.5
        cc._marks_in_window = 5
        cc._acks_in_window = 99
        before = sock.cwnd
        cc.on_ack(sock, 5, 0.05, 0.0)  # closes the window
        # cut by alpha'/2 where alpha' just updated from 0.5 toward 5/104
        assert sock.cwnd < before

    def test_loss_still_halves(self):
        cc = make_scheme("dctcp")
        sock = FakeSock(cwnd=100.0)
        assert cc.ssthresh(sock) == pytest.approx(50.0)


class TestScalable:
    def test_mimd_increase(self):
        cc = make_scheme("scalable")
        sock = FakeSock(cwnd=100.0, ssthresh=50.0)
        cc.on_ack(sock, 100, 0.05, 0.0)
        assert sock.cwnd == pytest.approx(101.0)  # 0.01 * 100 acks

    def test_gentle_decrease(self):
        cc = make_scheme("scalable")
        sock = FakeSock(cwnd=100.0)
        assert cc.ssthresh(sock) == pytest.approx(87.5)

    def test_reno_region_below_low_window(self):
        cc = make_scheme("scalable")
        sock = FakeSock(cwnd=8.0, ssthresh=4.0)
        assert cc.ssthresh(sock) == pytest.approx(4.0)

    def test_fills_the_link(self):
        flow, _ = run_flow("scalable")
        assert flow.stats().avg_throughput_bps > 0.8 * 24e6


class TestCompound:
    def test_dwnd_grows_on_empty_path(self):
        cc = make_scheme("compound")
        sock = FakeSock(cwnd=50.0, ssthresh=25.0)
        cc.on_init(sock)
        cc.base_rtt = 0.05
        for _ in range(200):
            cc.on_ack(sock, 10, 0.05, 0.0)  # always at base RTT
        assert cc.dwnd > 0.0

    def test_dwnd_drains_with_queueing(self):
        cc = make_scheme("compound")
        sock = FakeSock(cwnd=50.0, ssthresh=25.0)
        cc.on_init(sock)
        cc.base_rtt = 0.05
        cc.dwnd = 30.0
        for _ in range(200):
            cc.on_ack(sock, 10, 0.50, 0.0)  # heavy queueing
        assert cc.dwnd == 0.0

    def test_window_is_sum(self):
        cc = make_scheme("compound")
        sock = FakeSock(cwnd=50.0, ssthresh=25.0)
        cc.on_init(sock)
        cc.lwnd, cc.dwnd = 20.0, 15.0
        cc._sync(sock)
        assert sock.cwnd == pytest.approx(35.0)

    def test_fills_the_link(self):
        flow, _ = run_flow("compound")
        assert flow.stats().avg_throughput_bps > 0.8 * 24e6


class TestTcpLp:
    def test_yields_under_sustained_delay(self):
        cc = make_scheme("lp")
        sock = FakeSock(cwnd=50.0, ssthresh=25.0)
        cc.on_ack(sock, 1, 0.050, 0.0)  # establish min
        cc.on_ack(sock, 1, 0.200, 0.1)  # establish max
        for i in range(100):
            cc.on_ack(sock, 1, 0.190, 0.2 + i * 0.05)
        assert sock.cwnd == cc.MIN_CWND

    def test_grows_when_path_idle(self):
        cc = make_scheme("lp")
        sock = FakeSock(cwnd=50.0, ssthresh=25.0)
        before = sock.cwnd
        for i in range(20):
            cc.on_ack(sock, 5, 0.050, i * 0.05)
        assert sock.cwnd > before

    def test_scavenges_alone_but_yields_to_cubic(self):
        # alone: reasonable utilization
        flow, _ = run_flow("lp", dur=6.0)
        solo = flow.stats().avg_throughput_bps
        assert solo > 0.3 * 24e6
        # vs cubic: takes far less than fair share
        loop = EventLoop()
        net = Network(loop, FlatRate(24e6), TailDrop(240_000))
        cubic = Flow(net, 1, "cubic", min_rtt=0.02)
        lp = Flow(net, 0, "lp", min_rtt=0.02, start_at=1.0)
        cubic.start()
        lp.start()
        loop.run_until(20.0)
        assert (
            lp.receiver.total_bytes < 0.6 * cubic.receiver.total_bytes
        )
