"""ECN contract tests across the scheme registry and classic RFC 3168 path."""

import pytest

from repro.tcp.cc_base import CongestionControl, make_scheme, scheme_names


class FakeSock:
    cwnd = 100.0
    ssthresh = 50.0
    srtt = 0.05
    srtt_or_min = 0.05
    min_rtt = 0.05
    rttvar = 0.001
    inflight = 100
    delivery_rate = 10e6
    max_delivery_rate = 12e6
    delivered = 1000
    lost = 0
    sent_packets = 1000


class TestEcnCapability:
    def test_only_dctcp_negotiates_ecn(self):
        capable = [n for n in scheme_names() if make_scheme(n).ecn_capable]
        assert capable == ["dctcp"]

    def test_classic_rfc3168_default_backoff(self):
        # a scheme without its own on_ecn_ack reacts like a loss, once/RTT
        cc = make_scheme("newreno")
        sock = FakeSock()
        sock.cwnd = 100.0
        cc.on_ecn_ack(sock, now=1.0)
        assert sock.cwnd == pytest.approx(50.0)
        # a second echo inside the same RTT is ignored
        cc.on_ecn_ack(sock, now=1.01)
        assert sock.cwnd == pytest.approx(50.0)
        # but a new RTT allows another backoff
        cc.on_ecn_ack(sock, now=1.2)
        assert sock.cwnd == pytest.approx(25.0)

    def test_dctcp_echo_does_not_cut_immediately(self):
        cc = make_scheme("dctcp")
        sock = FakeSock()
        sock.cwnd = 100.0
        cc.on_ecn_ack(sock, now=1.0)
        assert sock.cwnd == 100.0  # cuts only at window boundaries
        assert cc._marks_in_window == 1
