"""The pool of policies: Sage's offline dataset.

The pool stores trajectories ``(states, actions, rewards)`` labeled with the
scheme and environment that produced them. It supports:

- building from rollouts (:meth:`PolicyPool.add`);
- persistence as a single ``.npz`` (:meth:`save` / :meth:`load`) — data is
  collected *once*, then every environment is "unplugged";
- batch sampling of fixed-length sequence windows for the recurrent CRR
  learner (:meth:`sample_sequences`);
- filtering by scheme (Sage-Top / Sage-Top4 pool-diversity ablations).
"""

from __future__ import annotations

import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


def _escape_meta(field: str) -> str:
    """Escape ``\\`` and the ``|`` separator so any scheme/env_id round-trips."""
    return field.replace("\\", "\\\\").replace("|", "\\|")


def _split_meta(meta: str) -> List[str]:
    """Split a meta line on unescaped ``|`` and unescape the fields."""
    fields: List[str] = []
    current: List[str] = []
    escaped = False
    for ch in meta:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == "|":
            fields.append("".join(current))
            current = []
        else:
            current.append(ch)
    if escaped:
        raise ValueError(f"malformed pool meta (dangling escape): {meta!r}")
    fields.append("".join(current))
    return fields


def parse_meta(meta: str) -> Tuple[str, str, bool]:
    """Decode one ``scheme|env_id|multi_flow`` meta line.

    Raises a clear :class:`ValueError` on a malformed line instead of
    silently mis-assigning fields (the historical ``split("|")`` broke as
    soon as an ``env_id`` contained ``|``).
    """
    fields = _split_meta(meta)
    if len(fields) != 3 or fields[2] not in ("0", "1"):
        raise ValueError(
            f"malformed pool meta entry {meta!r}: expected "
            "'scheme|env_id|multi_flow' with multi_flow in {0, 1}"
        )
    scheme, env_id, multi = fields
    return scheme, env_id, multi == "1"


def draw_window_starts(
    lengths: np.ndarray,
    seq_len: int,
    batch_size: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``batch_size`` window starts over trajectories of ``lengths``.

    Returns ``(traj_idx, local_starts)``: which trajectory each window came
    from and the start row *within* that trajectory. Windows cover
    ``seq_len + 1`` consecutive rows; trajectories shorter than that are
    never drawn, and eligible ones are weighted by their number of valid
    starts (every window position in the pool is equally likely).

    This is the single source of the sampling RNG stream: both
    :class:`PolicyPool` and the out-of-core ``repro.datastore.ShardedPool``
    call it, which is what makes their draws bit-identical for the same
    seed and trajectory ordering.
    """
    slack = lengths - seq_len  # number of valid window starts per traj
    eligible = np.nonzero(slack > 0)[0]
    if eligible.size == 0:
        raise ValueError(
            f"no trajectory longer than seq_len+1={seq_len + 1} in the pool"
        )
    weights = slack[eligible].astype(float)
    probs = weights / weights.sum()
    idx = eligible[rng.choice(eligible.size, size=batch_size, p=probs)]
    starts = rng.integers(0, slack[idx])
    return idx, starts


@dataclass
class Trajectory:
    """One scheme x environment trajectory."""

    scheme: str
    env_id: str
    multi_flow: bool
    states: np.ndarray  # (T, state_dim)
    actions: np.ndarray  # (T,)
    rewards: np.ndarray  # (T,)

    def __post_init__(self) -> None:
        t = len(self.actions)
        if self.states.shape[0] != t or self.rewards.shape[0] != t:
            raise ValueError("states/actions/rewards length mismatch")

    @property
    def length(self) -> int:
        return len(self.actions)


class PolicyPool:
    """A collection of trajectories from many schemes in many environments."""

    def __init__(self, trajectories: Optional[List[Trajectory]] = None) -> None:
        self.trajectories: List[Trajectory] = list(trajectories or [])
        self._concat = None  # lazy (states, actions, rewards, offsets, lengths)

    # ------------------------------------------------------------------
    def add(self, traj: Trajectory) -> None:
        self.trajectories.append(traj)
        self._concat = None

    def add_rollout(self, rollout) -> None:
        """Append a :class:`~repro.collector.rollout.RolloutResult`."""
        self.add(
            Trajectory(
                scheme=rollout.scheme,
                env_id=rollout.env.env_id,
                multi_flow=rollout.env.is_multi_flow,
                states=rollout.states,
                actions=rollout.actions,
                rewards=rollout.rewards,
            )
        )

    def __len__(self) -> int:
        return len(self.trajectories)

    @property
    def n_transitions(self) -> int:
        return sum(t.length for t in self.trajectories)

    def schemes(self) -> List[str]:
        return sorted({t.scheme for t in self.trajectories})

    def env_ids(self) -> List[str]:
        return sorted({t.env_id for t in self.trajectories})

    # ------------------------------------------------------------------
    def filter_schemes(self, keep: Iterable[str]) -> "PolicyPool":
        """A sub-pool containing only the given schemes (diversity ablation)."""
        keep_set = set(keep)
        return PolicyPool([t for t in self.trajectories if t.scheme in keep_set])

    def filter_env(self, predicate) -> "PolicyPool":
        """A sub-pool of trajectories whose env_id satisfies ``predicate``."""
        return PolicyPool([t for t in self.trajectories if predicate(t.env_id)])

    def grain_view(self, index: int, count: int) -> "PolicyPool":
        """Round-robin slice ``index`` of ``count`` — trajectories
        ``index, index+count, index+2*count, ...``.

        The data-parallel trainer's canonical batch decomposition: the
        grain's trajectory ordering (and therefore its sampling RNG
        stream) depends only on ``(index, count)``, never on which worker
        process samples it.
        """
        if not 0 <= index < count:
            raise ValueError(f"grain index {index} outside [0, {count})")
        return PolicyPool(self.trajectories[index::count])

    # ------------------------------------------------------------------
    def _concat_arrays(self):
        """Concatenated trajectory arrays for vectorized window sampling.

        Built lazily on first sample and invalidated by :meth:`add`. Windows
        never cross trajectory boundaries because starts are drawn within
        each trajectory's own span before adding its offset.
        """
        if self._concat is None:
            trajs = self.trajectories
            lengths = np.array([t.length for t in trajs], dtype=np.int64)
            offsets = np.zeros(len(trajs), dtype=np.int64)
            if len(trajs) > 1:
                offsets[1:] = np.cumsum(lengths[:-1])
            self._concat = (
                np.concatenate([t.states for t in trajs])
                if trajs
                else np.empty((0, 0)),
                np.concatenate([t.actions for t in trajs])
                if trajs
                else np.empty(0),
                np.concatenate([t.rewards for t in trajs])
                if trajs
                else np.empty(0),
                offsets,
                lengths,
            )
        return self._concat

    def sample_sequences(
        self,
        batch_size: int,
        seq_len: int,
        rng: np.random.Generator,
        normalize=None,
    ) -> Dict[str, np.ndarray]:
        """Sample ``batch_size`` windows of ``seq_len + 1`` consecutive steps.

        Returns arrays shaped for the recurrent learner:
        ``states (B, L, D)``, ``actions (B, L)``, ``rewards (B, L)``,
        ``next_states (B, L, D)``. Trajectories shorter than ``seq_len + 1``
        are skipped.

        The whole batch is one fancy-indexed gather from cached concatenated
        arrays — no per-window Python loop.
        """
        big_s, big_a, big_r, offsets, lengths = self._concat_arrays()
        idx, local_starts = draw_window_starts(lengths, seq_len, batch_size, rng)
        starts = offsets[idx] + local_starts
        rows = starts[:, None] + np.arange(seq_len + 1)
        s = big_s[rows]  # (B, L + 1, D)
        if normalize is not None:
            s = normalize(s)
        return {
            "states": s[:, :-1],
            "actions": big_a[rows[:, :-1]],
            "rewards": big_r[rows[:, :-1]],
            "next_states": s[:, 1:],
        }

    def drop_cache(self) -> None:
        """Release the concatenated-array cache.

        The cache holds a second full copy of every trajectory, so a pool
        that has been sampled keeps double its resident footprint until
        this is called. Training entry points call it once the epochs are
        done; the next :meth:`sample_sequences` rebuilds it transparently.
        """
        self._concat = None

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the pool as one compressed ``.npz``."""
        path = Path(path)
        payload: Dict[str, np.ndarray] = {
            "n": np.array([len(self.trajectories)]),
        }
        meta = []
        for i, t in enumerate(self.trajectories):
            if t.length == 0:
                raise ValueError(
                    f"refusing to save zero-length trajectory "
                    f"{t.scheme!r} on {t.env_id!r} (index {i})"
                )
            payload[f"s{i}"] = t.states
            payload[f"a{i}"] = t.actions
            payload[f"r{i}"] = t.rewards
            meta.append(
                f"{_escape_meta(t.scheme)}|{_escape_meta(t.env_id)}"
                f"|{int(t.multi_flow)}"
            )
        payload["meta"] = np.array(meta)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path) -> "PolicyPool":
        path = Path(path)
        try:
            data = np.load(path, allow_pickle=False)
        except (zipfile.BadZipFile, OSError, ValueError) as exc:
            raise ValueError(
                f"corrupt or truncated pool file {path}: {exc}"
            ) from exc
        with data:
            try:
                n = int(data["n"][0])
                meta = [str(m) for m in data["meta"]]
                trajectories = []
                for i in range(n):
                    scheme, env_id, multi = parse_meta(meta[i])
                    trajectories.append(
                        Trajectory(
                            scheme=scheme,
                            env_id=env_id,
                            multi_flow=multi,
                            states=data[f"s{i}"],
                            actions=data[f"a{i}"],
                            rewards=data[f"r{i}"],
                        )
                    )
            except (KeyError, IndexError) as exc:
                raise ValueError(
                    f"corrupt pool file {path}: missing entry {exc}"
                ) from exc
            except (zipfile.BadZipFile, zlib.error, OSError) as exc:
                # a truncated archive can pass np.load's header check and
                # only fail once a member is decompressed
                raise ValueError(
                    f"corrupt or truncated pool file {path}: {exc}"
                ) from exc
        return cls(trajectories)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable pool inventory."""
        lines = [
            f"PolicyPool: {len(self)} trajectories, "
            f"{self.n_transitions} transitions"
        ]
        by_scheme: Dict[str, int] = {}
        for t in self.trajectories:
            by_scheme[t.scheme] = by_scheme.get(t.scheme, 0) + t.length
        for scheme in sorted(by_scheme):
            lines.append(f"  {scheme:12s} {by_scheme[scheme]:8d} transitions")
        return "\n".join(lines)
