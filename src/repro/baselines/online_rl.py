"""OnlineRL: the online off-policy counterpart of Sage (Section 6.2).

Same input signals, same reward functions, same network architecture and
environments as Sage — but the data comes from *interacting* with the
environments during training: the current (stochastic) policy is rolled out
in sampled environments, transitions land in a replay buffer, and an
off-policy actor-critic update follows. This is exactly the experimental
control the paper builds to isolate the value of the data-driven/offline
formulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.collector.environments import EnvConfig, training_environments
from repro.collector.gr_unit import normalize_state
from repro.collector.pool import PolicyPool, Trajectory
from repro.collector.rollout import run_policy
from repro.core.agent import SageAgent
from repro.core.crr import CRRConfig
from repro.nn.functional import softmax_np
from repro.core.networks import NetworkConfig, SageCritic, SagePolicy, log_action
from repro.nn.autograd import Tensor, no_grad, stack_rows
from repro.nn.optim import Adam, clip_grad_norm


class OnlineRLTrainer:
    """Online off-policy actor-critic with experience replay.

    Critic: the same distributional TD update Sage uses. Actor: likelihood-
    ratio improvement against the critic's Q on *self-sampled* actions
    (no advantage filter anchored to a behavior dataset — there is none).
    """

    def __init__(
        self,
        environments: Optional[Sequence[EnvConfig]] = None,
        net_config: Optional[NetworkConfig] = None,
        crr_config: Optional[CRRConfig] = None,
        replay_capacity: int = 200,
        seed: int = 0,
    ) -> None:
        self.envs = (
            list(environments)
            if environments is not None
            else training_environments("mini")
        )
        self.cfg = crr_config if crr_config is not None else CRRConfig()
        self.net_cfg = net_config if net_config is not None else NetworkConfig()
        self.rng = np.random.default_rng(seed)
        self.policy = SagePolicy(self.net_cfg, self.rng)
        self.critic = SageCritic(self.net_cfg, self.rng)
        self.target_policy = SagePolicy(self.net_cfg, self.rng)
        self.target_critic = SageCritic(self.net_cfg, self.rng)
        self.target_policy.copy_from(self.policy)
        self.target_critic.copy_from(self.critic)
        self.opt_policy = Adam(self.policy.parameters(), lr=self.cfg.lr_policy)
        self.opt_critic = Adam(self.critic.parameters(), lr=self.cfg.lr_critic)
        self.replay = PolicyPool()
        self.replay_capacity = replay_capacity
        self.rollouts_done = 0
        self.steps_done = 0

    # -- data collection (the "online" part) ------------------------------
    def collect(self, n_rollouts: int = 1) -> None:
        """Roll out the current stochastic policy in random environments."""
        explorer = SageAgent(
            self.policy, deterministic=False, seed=int(self.rng.integers(1 << 31)),
            name="online-rl",
        )
        for _ in range(n_rollouts):
            env = self.envs[int(self.rng.integers(len(self.envs)))]
            result = run_policy(env, explorer)
            self.replay.add_rollout(result)
            self.rollouts_done += 1
        while len(self.replay) > self.replay_capacity:
            self.replay.trajectories.pop(0)

    # -- learning -----------------------------------------------------------
    def train_step(self) -> Dict[str, float]:
        cfg = self.cfg
        batch = self.replay.sample_sequences(
            cfg.batch_size, cfg.seq_len, self.rng, normalize=normalize_state
        )
        states, next_states = batch["states"], batch["next_states"]
        log_a = log_action(batch["actions"])
        rewards = batch["rewards"] * cfg.reward_scale
        b, l, _ = states.shape

        with no_grad():
            tgt_feats = self.target_policy.features_seq(next_states)
            tgt_rec = self.target_critic.recurrent_seq(next_states)
            target_probs = np.empty((b, l, self.critic.head.n_atoms))
            for t in range(l):
                a_next = self.target_policy.sample(tgt_feats[t], self.rng)
                logits = self.target_critic.q_logits(tgt_rec[t], log_action(a_next))
                target_probs[:, t, :] = self.critic.head.project_target(
                    rewards[:, t], cfg.gamma, softmax_np(logits.data)
                )

        rec = self.critic.recurrent_seq(states)
        critic_losses = [
            self.critic.head.cross_entropy(
                self.critic.q_features(rec[t], log_a[:, t]), target_probs[:, t, :]
            )
            for t in range(l)
        ]
        critic_loss = stack_rows(critic_losses).mean()
        self.opt_critic.zero_grad()
        critic_loss.backward()
        clip_grad_norm(self.critic.parameters(), cfg.grad_clip)
        self.opt_critic.step()

        # actor: REINFORCE-with-critic on self-sampled actions
        with no_grad():
            feats_ng = self.policy.features_seq(states)
            rec_ng = self.critic.recurrent_seq(states)
            sampled = np.empty((b, l))
            weights = np.empty((b, l))
            for t in range(l):
                a_j = self.policy.sample(feats_ng[t], self.rng)
                q = self.critic.q_value(rec_ng[t], log_action(a_j)).data
                sampled[:, t] = np.log(a_j)
                weights[:, t] = q
            weights -= weights.mean()
            weights /= weights.std() + 1e-6

        feats = self.policy.features_seq(states)
        pol_losses = [
            (Tensor(weights[:, t]) * self.policy.log_prob(feats[t], sampled[:, t]) * -1.0).mean()
            for t in range(l)
        ]
        policy_loss = stack_rows(pol_losses).mean()
        self.opt_policy.zero_grad()
        policy_loss.backward()
        clip_grad_norm(self.policy.parameters(), cfg.grad_clip)
        self.opt_policy.step()

        self.target_policy.soft_update(self.policy, cfg.target_tau)
        self.target_critic.soft_update(self.critic, cfg.target_tau)
        self.steps_done += 1
        return {
            "critic_loss": float(critic_loss.data),
            "policy_loss": float(policy_loss.data),
        }

    def train(
        self, n_iterations: int = 10, rollouts_per_iter: int = 1, steps_per_iter: int = 10
    ) -> "OnlineRLTrainer":
        """Interleave environment interaction and learning."""
        for _ in range(n_iterations):
            self.collect(rollouts_per_iter)
            for _ in range(steps_per_iter):
                self.train_step()
        return self

    def agent(self, name: str = "online-rl") -> SageAgent:
        return SageAgent(self.policy, name=name)
