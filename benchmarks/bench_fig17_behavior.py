"""Fig. 17 — Sage's behaviour in three sample scenarios.

(1) capacity doubles 24 -> 48 Mbps, (2) capacity halves 48 -> 24 Mbps,
(3) a competing Cubic flow; 20 ms mRTT, 450 KB buffer. Paper shape: the
learned policy tracks the capacity change in (1)/(2) and shares in (3).
The same harness also exercises a heuristic for reference series.
"""

import numpy as np

from conftest import once

from repro.collector.rollout import run_policy
from repro.evalx.dynamics import behavior_scenarios


def test_fig17_behavior_scenarios(benchmark, sage_agent):
    up, down, vs_cubic = behavior_scenarios(duration=16.0)

    def run():
        return {
            "up": run_policy(up, sage_agent),
            "down": run_policy(down, sage_agent),
            "vs-cubic": run_policy(vs_cubic, sage_agent),
        }

    results = once(benchmark, run)
    print("\n=== Fig. 17: Sage time series (sending rate Mbps / owd ms / cwnd) ===")
    for tag, r in results.items():
        s = r.stats
        mid = len(s.times) // 2
        print(
            f"{tag:>9}: thr 1st-half={np.mean(s.throughput_series[:mid]) / 1e6:6.2f} "
            f"2nd-half={np.mean(s.throughput_series[mid:]) / 1e6:6.2f}  "
            f"owd={s.avg_owd * 1e3:6.1f} ms  cwnd-end={s.cwnd_series[-1]:7.1f}"
        )

    s_up = results["up"].stats
    mid = len(s_up.times) // 2
    # the policy must use at least part of the new capacity after the step
    assert np.mean(s_up.throughput_series[mid + 10:]) >= 0.8 * np.mean(
        s_up.throughput_series[:mid]
    )
    # vs cubic: both flows make progress
    comp = results["vs-cubic"].competitor_stats[0]
    assert results["vs-cubic"].stats.avg_throughput_bps > 0.5e6
    assert comp.avg_throughput_bps > 0.5e6
