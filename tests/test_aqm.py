"""Unit tests for the AQM disciplines."""

import pytest

from repro.netsim.aqm import BoDe, CoDel, HeadDrop, PIE, TailDrop, make_aqm
from repro.netsim.packet import Packet


def pkt(seq=0, size=1500):
    return Packet(flow_id=0, seq=seq, size=size)


class TestTailDrop:
    def test_admits_until_full(self):
        q = TailDrop(capacity_bytes=3000)
        assert q.enqueue(pkt(0), 0.0)
        assert q.enqueue(pkt(1), 0.0)
        assert not q.enqueue(pkt(2), 0.0)
        assert q.drops == 1
        assert len(q) == 2

    def test_dequeue_fifo(self):
        q = TailDrop(capacity_bytes=10_000)
        for i in range(3):
            q.enqueue(pkt(i), 0.0)
        assert [q.dequeue(0.0).seq for _ in range(3)] == [0, 1, 2]

    def test_dequeue_empty_returns_none(self):
        assert TailDrop(1500).dequeue(0.0) is None

    def test_bytes_accounting(self):
        q = TailDrop(capacity_bytes=10_000)
        q.enqueue(pkt(0, size=1000), 0.0)
        q.enqueue(pkt(1, size=500), 0.0)
        assert q.bytes_queued == 1500
        q.dequeue(0.0)
        assert q.bytes_queued == 500

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TailDrop(0)


class TestHeadDrop:
    def test_evicts_oldest_on_overflow(self):
        q = HeadDrop(capacity_bytes=3000)
        q.enqueue(pkt(0), 0.0)
        q.enqueue(pkt(1), 0.0)
        assert q.enqueue(pkt(2), 0.0)  # arrival admitted, head dropped
        assert q.drops == 1
        assert q.dequeue(0.0).seq == 1

    def test_queue_never_exceeds_capacity(self):
        q = HeadDrop(capacity_bytes=4500)
        for i in range(10):
            q.enqueue(pkt(i), 0.0)
        assert q.bytes_queued <= 4500


class TestCoDel:
    def test_no_drops_below_target(self):
        q = CoDel(capacity_bytes=100_000, target=0.005, interval=0.1)
        now = 0.0
        for i in range(50):
            q.enqueue(pkt(i), now)
            got = q.dequeue(now + 0.001)  # sojourn 1 ms < 5 ms target
            assert got is not None
            now += 0.002
        assert q.drops == 0

    def test_drops_after_sustained_delay(self):
        q = CoDel(capacity_bytes=1_000_000, target=0.005, interval=0.05)
        # Fill the queue, then dequeue slowly so sojourn stays high.
        for i in range(200):
            q.enqueue(pkt(i), 0.0)
        now = 0.2
        delivered = 0
        for _ in range(200):
            got = q.dequeue(now)
            if got is not None:
                delivered += 1
            now += 0.01
        assert q.drops > 0
        assert delivered > 0  # it does not drop everything

    def test_hard_overflow_still_tail_drops(self):
        q = CoDel(capacity_bytes=1500)
        assert q.enqueue(pkt(0), 0.0)
        assert not q.enqueue(pkt(1), 0.0)


class TestPIE:
    def test_no_drops_when_queue_small(self):
        q = PIE(capacity_bytes=100_000)
        q.current_rate_bps = 10e6
        accepted = sum(q.enqueue(pkt(i), i * 0.001) for i in range(3))
        assert accepted == 3

    def test_drop_probability_rises_with_standing_queue(self):
        q = PIE(capacity_bytes=10_000_000, target=0.005)
        q.current_rate_bps = 1e6  # slow link -> big queueing delay
        now = 0.0
        for i in range(2000):
            q.enqueue(pkt(i), now)
            now += 0.005
            if i % 10 == 0 and len(q):
                q.dequeue(now)
        assert q._p > 0.0
        assert q.drops > 0

    def test_deterministic_given_seed(self):
        def run(seed):
            q = PIE(capacity_bytes=1_000_000, seed=seed)
            q.current_rate_bps = 1e6
            now = 0.0
            outcome = []
            for i in range(500):
                outcome.append(q.enqueue(pkt(i), now))
                now += 0.005
            return outcome

        assert run(7) == run(7)


class TestBoDe:
    def test_bounds_delay(self):
        q = BoDe(capacity_bytes=10_000_000, delay_bound=0.02)
        q.current_rate_bps = 12e6  # 0.02 s == 30 KB at 12 Mbps
        admitted = 0
        for i in range(100):
            if q.enqueue(pkt(i), 0.0):
                admitted += 1
        assert q.bytes_queued * 8.0 / 12e6 <= 0.02 + 1e-9
        assert admitted < 100

    def test_admits_when_under_bound(self):
        q = BoDe(capacity_bytes=1_000_000, delay_bound=1.0)
        q.current_rate_bps = 100e6
        assert q.enqueue(pkt(0), 0.0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("taildrop", TailDrop),
            ("tdrop", TailDrop),
            ("headdrop", HeadDrop),
            ("hdrop", HeadDrop),
            ("codel", CoDel),
            ("pie", PIE),
            ("bode", BoDe),
        ],
    )
    def test_make_aqm(self, name, cls):
        assert isinstance(make_aqm(name, 10_000), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_aqm("red", 10_000)

    def test_case_insensitive(self):
        assert isinstance(make_aqm("CoDel", 10_000), CoDel)
