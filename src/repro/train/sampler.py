"""Deterministic, optionally prefetching sequence-batch pipeline.

``PolicyPool.sample_sequences`` walks Python dicts and fancy-indexes per
row, so at small network sizes batch assembly is a visible slice of the
train step. :class:`SequenceSampler` hides that latency by preparing the
next batch(es) on worker threads while the learner is inside the matmuls
(numpy releases the GIL there).

Determinism contract:

- ``prefetch=0`` — synchronous: batches are drawn from the trainer's own
  ``rng`` exactly as ``CRRTrainer._sample_batch`` would, so the sampling
  order (and the trainer's whole RNG stream) is bit-identical to the
  legacy engine.
- ``prefetch>0`` — batch ``k`` is always drawn from a private generator
  seeded with ``derive_seed(seed, k)`` (the SplitMix64 stream also used by
  the parallel collector), and batches are handed out strictly in index
  order. The batch sequence is therefore a pure function of ``(seed, pool)``
  — independent of thread count and scheduling — but *different* from the
  ``prefetch=0`` stream, which interleaves sampling draws with the
  trainer's own network-sampling draws on one generator.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

import numpy as np

from repro.collector.parallel import derive_seed
from repro.collector.pool import PolicyPool  # noqa: F401 - re-exported for docs

__all__ = ["SequenceSampler"]


class SequenceSampler:
    """Hands out ``(B, L)`` sequence batches from a pool.

    ``pool`` is anything exposing the ``sample_sequences`` contract — an
    in-memory :class:`PolicyPool` or an out-of-core
    :class:`~repro.datastore.reader.ShardedPool`; both draw the same RNG
    stream, so the determinism contract below holds for either.

    Parameters
    ----------
    rng:
        Generator used in ``prefetch=0`` mode (typically the trainer's own,
        to keep the legacy RNG stream). Ignored when ``prefetch > 0``.
    prefetch:
        Number of batches kept in flight ahead of the consumer. ``0`` means
        fully synchronous; ``2`` double-buffers.
    workers:
        Producer threads (only meaningful when ``prefetch > 0``).
    seed:
        Base seed for the per-batch generators in prefetch mode.
    start_index:
        First batch index to produce — used to resume a checkpointed run at
        the same point of the prefetch seed stream.
    """

    def __init__(
        self,
        pool,  # PolicyPool or datastore.ShardedPool (duck-typed)
        batch_size: int,
        seq_len: int,
        rng: Optional[np.random.Generator] = None,
        normalize: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        prefetch: int = 0,
        workers: int = 1,
        seed: int = 0,
        start_index: int = 0,
    ) -> None:
        if prefetch < 0:
            raise ValueError("prefetch must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.pool = pool
        self.batch_size = batch_size
        self.seq_len = seq_len
        self.normalize = normalize
        self.prefetch = int(prefetch)
        self.workers = int(workers)
        self.seed = int(seed)
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        #: index of the next batch to hand out (== batches served so far
        #: when started at 0); checkpointed by the training engine.
        self.batch_index = int(start_index)

        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._ready: Dict[int, Dict[str, np.ndarray]] = {}
        self._produce_index = int(start_index)
        self._slots = threading.Semaphore(max(self.prefetch, 1))
        self._stop = False
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def _draw(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return self.pool.sample_sequences(
            self.batch_size, self.seq_len, rng, normalize=self.normalize
        )

    def _worker(self) -> None:
        while True:
            self._slots.acquire()
            with self._lock:
                if self._stop:
                    return
                index = self._produce_index
                self._produce_index += 1
            try:
                batch = self._draw(np.random.default_rng(derive_seed(self.seed, index)))
            except BaseException as exc:  # propagate into next_batch()
                with self._cond:
                    self._error = exc
                    self._cond.notify_all()
                return
            with self._cond:
                self._ready[index] = batch
                self._cond.notify_all()

    def _ensure_started(self) -> None:
        if self._threads or self.prefetch == 0:
            return
        if self._stop:  # restarted after close(): resync producer state
            self.seek(self.batch_index)
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker, name=f"sampler-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    # ------------------------------------------------------------------
    def next_batch(self) -> Dict[str, np.ndarray]:
        """The next batch, in deterministic index order."""
        if self.prefetch == 0:
            self.batch_index += 1
            return self._draw(self.rng)
        self._ensure_started()
        index = self.batch_index
        self.batch_index += 1
        with self._cond:
            while index not in self._ready:
                if self._error is not None:
                    # Re-raise the *original* worker exception so consumers
                    # can handle it by type (a poisoned pool raising
                    # ValueError should look like a ValueError here, not a
                    # generic RuntimeError). The traceback still points at
                    # the worker thread's frame. close() stays safe after
                    # this: dead workers have exited, live ones are
                    # released via the slot semaphore.
                    raise self._error
                self._cond.wait(timeout=0.1)
            batch = self._ready.pop(index)
        self._slots.release()
        return batch

    def seek(self, index: int) -> None:
        """Restart production at batch ``index`` (checkpoint resume)."""
        self.close()
        self.batch_index = int(index)
        self._produce_index = int(index)
        self._ready.clear()
        self._error = None
        self._stop = False
        self._threads = []
        self._slots = threading.Semaphore(max(self.prefetch, 1))

    def close(self) -> None:
        """Stop producer threads; the sampler can be restarted via seek()."""
        if not self._threads:
            return
        with self._lock:
            self._stop = True
        for _ in self._threads:
            self._slots.release()  # wake anyone blocked on a slot
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads = []

    def __enter__(self) -> "SequenceSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
