"""Tests for the symbolic distillation subsystem (repro.distill)."""

import json

import numpy as np
import pytest

from repro.collector.gr_unit import STATE_DIM
from repro.collector.pool import PolicyPool, Trajectory
from repro.core.networks import FastPolicy, NetworkConfig, SagePolicy
from repro.distill import (
    FEATURE_DIM,
    HIDDEN_SUMMARY_DIM,
    DistillConfig,
    DistilledPolicy,
    RegressionTree,
    TreeConfig,
    build_distill_dataset,
    evaluate_distilled,
    feature_names,
    fit_distilled,
    hidden_summary,
)

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=3, n_atoms=7)


@pytest.fixture()
def policy():
    return SagePolicy(TINY, np.random.default_rng(0))


def make_pool(n_traj=4, length=40, seed=0) -> PolicyPool:
    rng = np.random.default_rng(seed)
    pool = PolicyPool()
    for k in range(n_traj):
        t = length + 5 * k  # ragged lengths exercise the batched replay
        pool.add(
            Trajectory(
                scheme="cubic",
                env_id=f"env-{k}",
                multi_flow=False,
                states=rng.standard_normal((t, STATE_DIM)) * 50,
                actions=np.ones(t),
                rewards=np.zeros(t),
            )
        )
    return pool


# ---------------------------------------------------------------------------
# CART tree
# ---------------------------------------------------------------------------


class TestRegressionTree:
    def test_recovers_piecewise_constant(self):
        """A two-region step function is learned exactly."""
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(400, 3))
        y = np.where(x[:, 1] > 0.25, 2.0, -1.0)
        tree = RegressionTree.fit(x, y, TreeConfig(max_depth=3, min_leaf=5))
        values, confs = tree.predict(x)
        assert np.allclose(values, y)
        # zero-variance leaves -> confidence 1.0
        assert np.allclose(confs, 1.0)

    def test_predict_matches_scalar_walk(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((300, 6))
        y = np.sin(x[:, 0]) + 0.5 * x[:, 3]
        tree = RegressionTree.fit(x, y, TreeConfig(max_depth=6, min_leaf=8))
        values, confs = tree.predict(x)
        for i in range(0, 300, 17):
            v, c = tree.predict_one(x[i])
            assert values[i] == v and confs[i] == c

    def test_budgets_respected(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((500, 4))
        y = rng.standard_normal(500)
        cfg = TreeConfig(max_depth=3, max_leaves=5, min_leaf=20)
        tree = RegressionTree.fit(x, y, cfg)
        assert tree.n_leaves <= cfg.max_leaves
        assert tree.depth <= cfg.max_depth

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(4).standard_normal((100, 2))
        tree = RegressionTree.fit(x, np.full(100, 3.0))
        assert tree.n_leaves == 1
        values, confs = tree.predict(x)
        assert np.allclose(values, 3.0) and np.allclose(confs, 1.0)

    def test_feature_dim_mismatch_raises(self):
        x = np.random.default_rng(5).standard_normal((50, 3))
        tree = RegressionTree.fit(x, x[:, 0])
        with pytest.raises(ValueError, match="features"):
            tree.predict(np.zeros((4, 7)))

    def test_rules_cover_leaves(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((200, 2))
        y = np.where(x[:, 0] > 0, 1.0, 0.0)
        tree = RegressionTree.fit(x, y, TreeConfig(max_depth=2, min_leaf=10))
        rules = tree.rules(["a", "b"])
        assert len(rules) == tree.n_leaves
        assert any("a" in r for r in rules)


# ---------------------------------------------------------------------------
# dataset generation
# ---------------------------------------------------------------------------


class TestDataset:
    def test_shapes_and_targets(self, policy):
        pool = make_pool()
        fast = FastPolicy(policy)
        x, y = build_distill_dataset(fast, pool)
        assert x.shape == (pool.n_transitions, FEATURE_DIM)
        assert y.shape == (pool.n_transitions,)
        assert np.all(np.isfinite(x)) and np.all(np.isfinite(y))

    def test_targets_match_sequential_replay(self, policy):
        """Batched ragged replay == replaying each trajectory alone."""
        pool = make_pool(n_traj=3, length=12)
        fast = FastPolicy(policy)
        _, y = build_distill_dataset(fast, pool)
        expected = []
        by_step = []  # (t, traj_idx sorted by descending length) ordering
        trajs = sorted(
            pool.trajectories, key=lambda tr: -len(tr.states)
        )
        per_traj = []
        for tr in trajs:
            h = fast.initial_state_batch(1)
            logs = []
            from repro.collector.gr_unit import normalize_state

            for s in tr.states:
                r, h = fast.step_batch(normalize_state(s[None, :]), h)
                logs.append(np.log(r[0]))
            per_traj.append(logs)
        t_max = max(len(p) for p in per_traj)
        for t in range(t_max):
            for p in per_traj:
                if t < len(p):
                    by_step.append(p[t])
        expected = np.array(by_step)
        assert np.allclose(y, expected, rtol=1e-12, atol=1e-14)

    def test_hidden_summary_no_gru(self):
        assert np.array_equal(
            hidden_summary(None, 5), np.zeros((5, HIDDEN_SUMMARY_DIM))
        )

    def test_max_samples_subsample(self, policy):
        pool = make_pool()
        fast = FastPolicy(policy)
        x, y = build_distill_dataset(fast, pool, max_samples=50)
        assert len(x) == 50 and len(y) == 50

    def test_empty_pool_raises(self, policy):
        with pytest.raises(ValueError, match="no trajectories"):
            build_distill_dataset(FastPolicy(policy), PolicyPool())

    def test_feature_names_align(self):
        names = feature_names()
        assert len(names) == FEATURE_DIM
        assert names[-HIDDEN_SUMMARY_DIM] == "h_mean"


# ---------------------------------------------------------------------------
# fit + calibration + evaluation
# ---------------------------------------------------------------------------


class TestFitDistilled:
    def test_fit_and_report(self, policy):
        pool = make_pool()
        distilled, report = fit_distilled(
            policy, pool, DistillConfig(target_coverage=0.8, max_depth=6)
        )
        assert isinstance(distilled, DistilledPolicy)
        assert report["n_samples"] == pool.n_transitions
        # the calibrated gate passes roughly the target fraction
        assert report["train_coverage"] >= 0.75
        assert distilled.refresh_every == 8

    def test_predict_ratio_space(self, policy):
        pool = make_pool()
        distilled, _ = fit_distilled(policy, pool)
        x = np.random.default_rng(7).standard_normal((9, STATE_DIM))
        h = np.zeros((9, TINY.gru_dim))
        from repro.collector.gr_unit import normalize_state

        ratios, confs = distilled.predict(normalize_state(x), h)
        assert ratios.shape == (9,) and confs.shape == (9,)
        assert np.all(ratios > 0)  # exp of log-ratios
        assert np.all((confs > 0) & (confs <= 1.0))

    def test_evaluate_distilled(self, policy):
        pool = make_pool()
        distilled, _ = fit_distilled(policy, pool)
        report = evaluate_distilled(distilled, policy, pool)
        assert 0.0 <= report["coverage"] <= 1.0
        assert report["ratio_within_5pct"] >= report["ratio_within_5pct_covered"] - 1.0

    def test_wrong_feature_count_rejected(self):
        x = np.random.default_rng(8).standard_normal((64, 5))
        tree = RegressionTree.fit(x, x[:, 0])
        with pytest.raises(ValueError, match=str(FEATURE_DIM)):
            DistilledPolicy(tree, conf_threshold=0.5)


# ---------------------------------------------------------------------------
# Satellite: checkpoint round-trip + corruption
# ---------------------------------------------------------------------------


class TestCheckpoint:
    def _distilled(self, policy):
        distilled, _ = fit_distilled(policy, make_pool())
        return distilled

    def test_round_trip_bit_exact(self, policy, tmp_path):
        distilled = self._distilled(policy)
        path = tmp_path / "tree.npz"
        distilled.save(path)
        loaded = DistilledPolicy.load(path)
        for attr in ("feature", "threshold", "left", "right", "value", "conf"):
            assert np.array_equal(
                getattr(distilled.tree, attr), getattr(loaded.tree, attr)
            )
        assert loaded.conf_threshold == distilled.conf_threshold
        assert loaded.refresh_every == distilled.refresh_every
        assert loaded.meta == distilled.meta
        x = np.random.default_rng(9).standard_normal((7, FEATURE_DIM))
        assert np.array_equal(
            distilled.tree.predict(x)[0], loaded.tree.predict(x)[0]
        )

    def test_sidecar_written(self, policy, tmp_path):
        path = tmp_path / "tree.npz"
        self._distilled(policy).save(path)
        sidecar = tmp_path / "tree.npz.crc32"
        assert sidecar.exists()
        meta = json.loads(sidecar.read_text())
        assert meta["bytes"] == path.stat().st_size

    def test_corrupt_bytes_raise_value_error(self, policy, tmp_path):
        path = tmp_path / "tree.npz"
        self._distilled(policy).save(path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="integrity"):
            DistilledPolicy.load(path)

    def test_truncated_file_raises_value_error(self, policy, tmp_path):
        path = tmp_path / "tree.npz"
        self._distilled(policy).save(path)
        path.write_bytes(path.read_bytes()[: 100])
        with pytest.raises(ValueError):
            DistilledPolicy.load(path)

    def test_garbage_without_sidecar_raises_value_error(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(ValueError, match="npz"):
            DistilledPolicy.load(path)

    def test_schema_version_mismatch(self, policy, tmp_path, monkeypatch):
        import repro.distill.model as model

        path = tmp_path / "tree.npz"
        distilled = self._distilled(policy)
        monkeypatch.setattr(model, "SCHEMA_VERSION", 99)
        distilled.save(path)
        monkeypatch.setattr(model, "SCHEMA_VERSION", 1)
        with pytest.raises(ValueError, match="schema version"):
            DistilledPolicy.load(path)

    def test_missing_keys_rejected(self, policy, tmp_path):
        path = tmp_path / "tree.npz"
        np.savez(path, **{"meta/schema_version": np.array([1])})
        with pytest.raises(ValueError, match="missing keys"):
            DistilledPolicy.load(path)


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------


class TestConfigs:
    def test_tree_config_validation(self):
        with pytest.raises(ValueError):
            TreeConfig(max_depth=0)
        with pytest.raises(ValueError):
            TreeConfig(max_leaves=1)
        with pytest.raises(ValueError):
            TreeConfig(min_leaf=0)

    def test_distill_config_validation(self):
        with pytest.raises(ValueError):
            DistillConfig(target_coverage=0.0)
        with pytest.raises(ValueError):
            DistillConfig(target_coverage=1.5)
        with pytest.raises(ValueError):
            DistillConfig(refresh_every=1)
