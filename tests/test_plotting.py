"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.evalx.plotting import ascii_scatter, ascii_timeseries, plot_flow_throughput


class TestTimeseries:
    def test_basic_structure(self):
        chart = ascii_timeseries(
            {"a": ([0, 1, 2], [0.0, 1.0, 2.0])}, width=20, height=5,
            title="t", y_label="u",
        )
        lines = chart.splitlines()
        assert lines[0] == "t"
        assert "#" in chart  # the series glyph
        assert "a" in lines[-1]
        assert "[u]" in lines[-1]

    def test_multiple_series_distinct_glyphs(self):
        chart = ascii_timeseries(
            {"a": ([0, 1], [0, 1]), "b": ([0, 1], [1, 0])}, width=20, height=5
        )
        assert "#" in chart and "*" in chart

    def test_extremes_on_borders(self):
        chart = ascii_timeseries({"a": ([0, 10], [5.0, 15.0])}, width=20, height=5)
        assert "        15 +" in chart
        assert "         5 +" in chart

    def test_constant_series_ok(self):
        chart = ascii_timeseries({"a": ([0, 1], [3.0, 3.0])}, width=10, height=4)
        assert "#" in chart

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_timeseries({})
        with pytest.raises(ValueError):
            ascii_timeseries({"a": ([], [])})


class TestScatter:
    def test_points_and_labels(self):
        chart = ascii_scatter(
            {"cubic": (24.0, 60.0), "vegas": (23.0, 21.0)},
            title="frontier", x_label="Mbps", y_label="ms",
        )
        assert "frontier" in chart
        assert "cubic" in chart and "vegas" in chart
        assert "#" in chart and "*" in chart

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_scatter({})


class TestFlowChart:
    def test_plot_rollout(self):
        from repro.collector.environments import EnvConfig
        from repro.collector.rollout import collect_trajectory

        env = EnvConfig(env_id="plot", kind="flat", bw_mbps=12.0,
                        min_rtt=0.04, buffer_bdp=2.0, duration=3.0)
        r = collect_trajectory(env, "cubic")
        chart = plot_flow_throughput(r)
        assert "cubic" in chart
        assert "Mbps" in chart
