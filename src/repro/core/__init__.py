"""Sage's core learning block (Sections 4.2 and 5): the paper's contribution.

- :mod:`~repro.core.networks` — the Fig. 6 architecture: encoder → GRU →
  LayerNorm/LReLU → encoder → FC → 2x residual blocks → GMM head (policy)
  or C51 head (critic), with the ablation switches of Fig. 12.
- :mod:`~repro.core.crr` — Critic-Regularized Regression: distributional
  policy evaluation (Eq. 5) + exp-advantage-filtered policy improvement
  (Eq. 6).
- :mod:`~repro.core.agent` — the deployable :class:`SageAgent` (the
  Execution block's user-space side).
- :mod:`~repro.core.training` — end-to-end pipeline: collect the pool once,
  train offline, checkpoint per "day", evaluate winning rates (Fig. 7).
"""

from repro.core.networks import SagePolicy, SageCritic, NetworkConfig, FastPolicy
from repro.core.ablation import ABLATIONS, train_ablation
from repro.core.crr import CRRTrainer, CRRConfig
from repro.core.agent import SageAgent
from repro.core.training import (
    TrainingRun,
    collect_pool,
    train_sage,
    train_sage_on_pool,
)

__all__ = [
    "SagePolicy",
    "SageCritic",
    "NetworkConfig",
    "FastPolicy",
    "ABLATIONS",
    "train_ablation",
    "CRRTrainer",
    "CRRConfig",
    "SageAgent",
    "TrainingRun",
    "collect_pool",
    "train_sage",
    "train_sage_on_pool",
]
