"""Trajectory distance and similarity analyses (Sections 7.1 and 7.2).

- :func:`distance_cdf` (Fig. 11): for each transition ``u = (s, a, s')`` of
  a fresh rollout, the *Distance* is the minimum pairwise cosine distance to
  the transitions already in the pool — quantifying distributional shift.
- :func:`similarity_index` (Fig. 13): the average cosine similarity between
  an agent's transitions and a scheme's transitions in the same
  environment — quantifying which pool schemes the learned model resembles.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.collector.pool import PolicyPool
from repro.collector.rollout import RolloutResult


def transition_matrix(result_or_traj) -> np.ndarray:
    """Stack (s_t, a_t, s_{t+1}) transitions into a (T-1, 2D+1) matrix."""
    states = np.asarray(result_or_traj.states, dtype=np.float64)
    actions = np.asarray(result_or_traj.actions, dtype=np.float64)
    if len(actions) < 2:
        raise ValueError("need at least two timesteps to form transitions")
    return np.concatenate(
        [states[:-1], actions[:-1, None], states[1:]], axis=1
    )


def _normalize_rows(m: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(m, axis=1, keepdims=True)
    return m / np.maximum(norms, 1e-12)


def min_cosine_distances(
    probe: np.ndarray, reference: np.ndarray, block: int = 512
) -> np.ndarray:
    """Per-probe-row minimum cosine distance to any reference row."""
    p = _normalize_rows(probe)
    r = _normalize_rows(reference)
    out = np.empty(p.shape[0])
    for i in range(0, p.shape[0], block):
        sims = p[i : i + block] @ r.T  # cosine similarity
        out[i : i + block] = 1.0 - sims.max(axis=1)
    return np.clip(out, 0.0, 2.0)


def distance_cdf(
    rollout: RolloutResult, pool: PolicyPool, max_pool_rows: int = 20000, seed: int = 0
) -> np.ndarray:
    """Fig. 11: sorted Distance values of a rollout against the pool."""
    probe = transition_matrix(rollout)
    refs = [transition_matrix(t) for t in pool.trajectories if t.length >= 2]
    if not refs:
        raise ValueError("pool has no usable trajectories")
    reference = np.concatenate(refs, axis=0)
    if reference.shape[0] > max_pool_rows:
        rng = np.random.default_rng(seed)
        idx = rng.choice(reference.shape[0], size=max_pool_rows, replace=False)
        reference = reference[idx]
    return np.sort(min_cosine_distances(probe, reference))


def similarity_index(
    agent_rollout: RolloutResult, scheme_rollout: RolloutResult
) -> float:
    """Fig. 13: mean over agent transitions of the max cosine similarity to
    the scheme's transitions in the same environment (1 = identical)."""
    a = _normalize_rows(transition_matrix(agent_rollout))
    s = _normalize_rows(transition_matrix(scheme_rollout))
    sims = a @ s.T
    return float(sims.max(axis=1).mean())


def similarity_table(
    agent_rollouts: Sequence[RolloutResult],
    scheme_rollouts: Dict[str, List[RolloutResult]],
) -> Dict[str, List[float]]:
    """Similarity Indices per scheme across environments (rows of Fig. 13).

    ``agent_rollouts[i]`` and every ``scheme_rollouts[name][i]`` must come
    from the same environment ``i``.
    """
    table: Dict[str, List[float]] = {}
    for name, rollouts in scheme_rollouts.items():
        if len(rollouts) != len(agent_rollouts):
            raise ValueError(f"scheme {name} has mismatched environment count")
        table[name] = [
            similarity_index(a, s) for a, s in zip(agent_rollouts, rollouts)
        ]
    return table
