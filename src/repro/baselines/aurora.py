"""Aurora-like baseline (Jay et al., ICML 2019) and the Genet-like variant.

Aurora is *online on-policy* deep RL for CC: a feed-forward network (no
memory), trained by policy gradient on freshly collected rollouts only, with
a single-flow throughput/latency/loss reward — it never sees a
TCP-friendliness objective. Genet (Xia et al., SIGCOMM 2022) keeps the same
learner but feeds environments through a difficulty curriculum.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from repro.collector.environments import EnvConfig, training_environments
from repro.collector.gr_unit import normalize_state
from repro.collector.rollout import RolloutResult, run_policy
from repro.core.agent import SageAgent
from repro.core.networks import NetworkConfig, SagePolicy, log_action
from repro.nn.autograd import Tensor, stack_rows
from repro.nn.optim import Adam, clip_grad_norm


def _returns(rewards: np.ndarray, gamma: float) -> np.ndarray:
    out = np.empty_like(rewards)
    acc = 0.0
    for t in range(len(rewards) - 1, -1, -1):
        acc = rewards[t] + gamma * acc
        out[t] = acc
    return out


class AuroraTrainer:
    """On-policy policy gradient with a memoryless MLP policy."""

    def __init__(
        self,
        environments: Optional[Sequence[EnvConfig]] = None,
        net_config: Optional[NetworkConfig] = None,
        gamma: float = 0.95,
        lr: float = 3e-4,
        curriculum: bool = False,
        seed: int = 0,
    ) -> None:
        base_cfg = net_config if net_config is not None else NetworkConfig()
        # Aurora has no recurrent memory.
        self.net_cfg = replace(base_cfg, use_gru=False)
        self.gamma = gamma
        self.curriculum = curriculum
        self.rng = np.random.default_rng(seed)
        envs = (
            list(environments)
            if environments is not None
            else [e for e in training_environments("mini") if not e.is_multi_flow]
        )
        # Aurora's reward ignores multi-flow objectives entirely; it still
        # *runs* in multi-flow envs at evaluation, it just never trains there.
        self.envs = [e for e in envs if not e.is_multi_flow] or envs
        if self.curriculum:
            # Genet: order environments easy -> hard (stable, big-buffer flat
            # links first; steps and shallow buffers later).
            self.envs = sorted(
                self.envs,
                key=lambda e: (e.kind != "flat", -e.buffer_bdp, e.bw_mbps),
            )
        self.policy = SagePolicy(self.net_cfg, self.rng)
        self.opt = Adam(self.policy.parameters(), lr=lr)
        self.iterations_done = 0

    def _rollout(self) -> RolloutResult:
        if self.curriculum:
            # walk the curriculum: early iterations draw from the easy prefix
            frac = min((self.iterations_done + 1) / max(len(self.envs), 1), 1.0)
            hi = max(int(frac * len(self.envs)), 1)
            env = self.envs[int(self.rng.integers(hi))]
        else:
            env = self.envs[int(self.rng.integers(len(self.envs)))]
        explorer = SageAgent(
            self.policy,
            deterministic=False,
            seed=int(self.rng.integers(1 << 31)),
            name="aurora",
        )
        return run_policy(env, explorer)

    def train_iteration(self) -> float:
        """One on-policy iteration: a fresh rollout, one REINFORCE update."""
        result = self._rollout()
        states = normalize_state(result.states)
        log_a = log_action(result.actions)
        returns = _returns(result.rewards, self.gamma)
        adv = (returns - returns.mean()) / (returns.std() + 1e-6)

        # Feed-forward policy: every timestep is an independent sample.
        # Subsample long rollouts to keep updates cheap.
        t_idx = np.arange(len(log_a))
        if len(t_idx) > 128:
            t_idx = self.rng.choice(t_idx, size=128, replace=False)
        feats = self.policy.features_seq(states[t_idx][:, None, :])
        logp = self.policy.log_prob(feats[0], log_a[t_idx])
        loss = (Tensor(adv[t_idx]) * logp * -1.0).mean()
        self.opt.zero_grad()
        loss.backward()
        clip_grad_norm(self.policy.parameters(), 10.0)
        self.opt.step()
        self.iterations_done += 1
        return float(loss.data)

    def train(self, n_iterations: int = 10) -> "AuroraTrainer":
        for _ in range(n_iterations):
            self.train_iteration()
        return self

    def agent(self, name: Optional[str] = None) -> SageAgent:
        default = "genet" if self.curriculum else "aurora"
        return SageAgent(self.policy, name=name or default)
