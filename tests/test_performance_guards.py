"""Performance-regression guards for known pathological workloads.

These bound the *work done*, not wall-clock, so they are robust on slow CI:
the quadratic-hole-scan and retransmission-storm bugs each produced orders
of magnitude more events/sends than the fixed code does.
"""

import os
import time

import numpy as np
import pytest

from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.netsim.traces import FlatRate
from repro.tcp.flow import Flow


class TestWorkBounds:
    def test_aggressive_slow_start_overshoot_bounded_sends(self):
        # hybla overshoots hard; pre-fix this produced ~10x the sends of the
        # delivered packets via retransmission storms
        loop = EventLoop()
        net = Network(loop, FlatRate(48e6), TailDrop(int(48e6 * 0.04 / 8)))
        flow = Flow(net, 0, "hybla", min_rtt=0.04)
        flow.start()
        loop.run_until(10.0)
        sent = flow.sender.sent_packets
        delivered = flow.receiver.total_packets
        assert delivered > 0
        assert sent < 2.0 * delivered  # bounded retransmission overhead

    def test_external_cwnd_runaway_bounded_by_cap(self):
        # a policy pinning ratio=3 every tick must be stopped by max_cwnd,
        # not flood the simulator with millions of sends
        loop = EventLoop()
        net = Network(loop, FlatRate(12e6), TailDrop(120_000))
        flow = Flow(net, 0, "newreno", min_rtt=0.04)
        flow.sender.external_cwnd_control = True
        flow.start()
        t = 0.0
        while t < 3.0:
            t += 0.02
            loop.run_until(t)
            flow.sender.set_cwnd(flow.sender.cwnd * 3.0)
        assert flow.sender.cwnd == flow.sender.max_cwnd
        # sends bounded by cap + losses, far below a runaway
        assert flow.sender.sent_packets < 12 * flow.sender.max_cwnd

    def test_receiver_hole_scan_bounded(self):
        # the hole report must stay bounded even under huge reorder spans
        from repro.netsim.packet import Packet
        from repro.tcp.socket import TcpReceiver

        loop = EventLoop()
        net = Network(loop, FlatRate(12e6), TailDrop(120_000))
        acks = []
        recv = TcpReceiver(0, net)
        net.attach_flow(0, __import__("repro.netsim.network", fromlist=["PathConfig"]).PathConfig(min_rtt=0.02),
                        data_sink=lambda p: None, ack_sink=lambda p: None)
        net.send_ack = lambda a: acks.append(a)  # capture instead of routing
        # deliver every 3rd packet over a huge span: thousands of holes
        for seq in range(0, 30000, 3):
            recv.on_data(Packet(flow_id=0, seq=seq, sent_time=0.0))
        assert all(len(a.sack_holes) <= 128 for a in acks)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speedup guard needs at least 2 CPU cores",
)
class TestParallelCollection:
    def test_two_workers_not_slower_than_serial(self):
        # on a multi-core machine, fanning a 4-env batch over 2 workers must
        # not lose to the serial loop (some tolerance for process startup)
        from repro.collector.environments import EnvConfig
        from repro.collector.parallel import collect_pool_parallel

        envs = [
            EnvConfig(
                env_id=f"guard-{i}", kind="flat", bw_mbps=24.0,
                min_rtt=0.04, buffer_bdp=2.0, duration=4.0,
            )
            for i in range(4)
        ]
        schemes = ["cubic"]

        t0 = time.perf_counter()
        serial = collect_pool_parallel(envs, schemes, workers=1)
        serial_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel = collect_pool_parallel(envs, schemes, workers=2, chunksize=1)
        parallel_s = time.perf_counter() - t0

        assert len(serial) == len(parallel) == 4
        # "not slower": allow 25% headroom for executor spin-up on small work
        assert parallel_s <= serial_s * 1.25, (
            f"2-worker collection took {parallel_s:.2f}s vs "
            f"{serial_s:.2f}s serial"
        )
