"""Figs. 18 & 27 — fairness among same-scheme flows with staggered joins.

Flows of one scheme join a shared bottleneck every ``join_every`` seconds.
Paper shape: most schemes (and Sage) converge to near-equal shares; Jain's
index approaches 1 in the steady tail.
"""

from conftest import SCALE, once

from repro.evalx.dynamics import fairness_experiment
from repro.evalx.leagues import Participant

SCHEMES = ["cubic", "vegas", "bbr2"]
N_FLOWS = {"tiny": 3, "small": 4, "full": 4}[SCALE]
JOIN = {"tiny": 6.0, "small": 12.0, "full": 25.0}[SCALE]
DUR = {"tiny": 24.0, "small": 60.0, "full": 120.0}[SCALE]


def test_fig18_fairness(benchmark, sage_agent):
    def run():
        out = {}
        for s in SCHEMES:
            out[s] = fairness_experiment(
                Participant.from_scheme(s), n_flows=N_FLOWS, join_every=JOIN,
                bw_mbps=24.0, duration=DUR,
            )
        out["sage"] = fairness_experiment(
            Participant.from_agent(sage_agent), n_flows=N_FLOWS, join_every=JOIN,
            bw_mbps=24.0, duration=DUR,
        )
        return out

    results = once(benchmark, run)
    print("\n=== Fig. 18/27: Jain fairness index (tail) ===")
    for name, res in results.items():
        rates = [s.avg_throughput_bps / 1e6 for s in res.flow_stats]
        print(f"{name:>8}: jain={res.jain_index():.3f}  shares(Mbps)="
              + " ".join(f"{r:5.2f}" for r in rates))
    assert results["cubic"].jain_index() > 0.6
    assert results["sage"].jain_index() > 0.3
