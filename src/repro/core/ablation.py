"""The Fig. 12 ablation variants.

Six retrained models, matching the paper:

Input ablations (signals removed from the 69-dim vector):

- ``no-minmax``  — all min/max window statistics (33 inputs remain);
- ``no-rttvar``  — the rtt_rate_* and rtt_var_* blocks (Table 1 rows 23-40);
- ``no-loss-inf`` — the lost_* and inflight_* blocks (rows 41-58).

Architecture ablations:

- ``no-gru``     — the GRU block removed;
- ``no-encoder`` — the post-GRU encoder removed;
- ``no-gmm``     — the GMM head replaced by a single Gaussian.

Input ablations are realized by zero-masking the removed entries at both
training and deployment (equivalent to deleting the inputs, without
changing tensor shapes).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

import numpy as np

from repro.collector.gr_unit import (
    LOSS_INFLIGHT_INDICES,
    MINMAX_INDICES,
    RTTVAR_RATE_INDICES,
    STATE_DIM,
)
from repro.collector.pool import PolicyPool
from repro.core.agent import SageAgent
from repro.core.crr import CRRConfig, CRRTrainer
from repro.core.networks import NetworkConfig


def _mask_without(indices) -> np.ndarray:
    mask = np.ones(STATE_DIM)
    mask[list(indices)] = 0.0
    return mask


#: ablation name -> (net-config override dict, state mask or None)
ABLATIONS: Dict[str, tuple] = {
    "no-minmax": ({}, _mask_without(MINMAX_INDICES)),
    "no-rttvar": ({}, _mask_without(RTTVAR_RATE_INDICES)),
    "no-loss-inf": ({}, _mask_without(LOSS_INFLIGHT_INDICES)),
    "no-gru": ({"use_gru": False}, None),
    "no-encoder": ({"use_post_encoder": False}, None),
    "no-gmm": ({"use_gmm": False}, None),
}


def train_ablation(
    pool: PolicyPool,
    name: str,
    n_steps: int = 100,
    net_config: Optional[NetworkConfig] = None,
    crr_config: Optional[CRRConfig] = None,
    seed: int = 0,
) -> SageAgent:
    """Retrain one ablation variant under the same regime and return it."""
    if name not in ABLATIONS:
        raise ValueError(f"unknown ablation {name!r}; choose from {sorted(ABLATIONS)}")
    overrides, mask = ABLATIONS[name]
    base = net_config if net_config is not None else NetworkConfig()
    cfg = replace(base, **overrides)
    trainer = CRRTrainer(
        pool, net_config=cfg, config=crr_config, seed=seed, state_mask=mask
    )
    trainer.train(n_steps)
    return SageAgent(trainer.policy, name=name, state_mask=mask)
