"""Fig. 15 — "the more the merrier": pool diversity.

Sage retrained on restricted pools: Sage-Top (only the two top-ranked
schemes, Vegas + Cubic) and Sage-Top4 (the top four of each set). Paper
shape: the model trained on the full diverse pool outperforms the ones
trained on fewer policy variations, even with the same data volume.
"""

from conftest import BENCH_CRR, BENCH_NET, SCALE, bench_set1, bench_set2, once

from repro.core.training import train_sage_on_pool
from repro.evalx.leagues import Participant, run_league

STEPS = {"tiny": 60, "small": 200, "full": 1000}[SCALE]
TOP = ["vegas", "cubic"]
TOP4 = ["vegas", "bbr2", "yeah", "cubic", "westwood", "newreno"]


def test_fig15_pool_diversity(benchmark, policy_pool, sage_agent):
    set1, set2 = bench_set1()[:2], bench_set2()[:2]

    def run():
        participants = [Participant.from_agent(sage_agent)]
        for name, keep in (("sage-top", TOP), ("sage-top4", TOP4)):
            sub = policy_pool.filter_schemes(keep)
            r = train_sage_on_pool(
                sub, n_steps=STEPS, n_checkpoints=1, net_config=BENCH_NET,
                crr_config=BENCH_CRR,
            )
            r.agent.name = name
            participants.append(Participant.from_agent(r.agent))
        return run_league(participants, set1=set1, set2=set2)

    result = once(benchmark, run)
    print("\n=== Fig. 15: pool-diversity variants ===")
    print(result.format_table())
    assert {"sage", "sage-top", "sage-top4"} <= set(result.set1_rates)
