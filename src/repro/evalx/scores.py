"""Scores, intervals, winners, and winning rates (Section 5.1, Appendix D).

Single-flow scenarios are scored with a Power-style metric
``S_p = r^alpha / d`` (bigger is better); multi-flow scenarios with the
friendliness distance ``S_fr = |f - r|`` (smaller is better).

Appendix D's two refinements are both implemented:

- instead of one score per experiment, each experiment is split into
  ``n_intervals`` (default 4) and scored per interval, so slow reactions to
  changes are not averaged away;
- the *winners* of a scenario-interval are all schemes within a margin
  (default 10%) of the best score, absorbing meaningless real-number
  differences.

The *winning rate* of a scheme is its number of wins over the total number
of scenario-intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class ScoreEntry:
    """Score of one participant in one scenario-interval."""

    participant: str
    env_id: str
    interval: int
    score: float
    higher_is_better: bool


def power_score(throughput_bps: float, delay_s: float, alpha: float = 2.0) -> float:
    """``S_p = r^alpha / d`` with r in Mbps and d in ms (scale-free ranking)."""
    if delay_s <= 0:
        raise ValueError("delay must be positive")
    r = max(throughput_bps / 1e6, 1e-6)
    d = delay_s * 1e3
    return (r ** alpha) / d


def friendliness_score(throughput_bps: float, fair_share_bps: float) -> float:
    """``S_fr = |f - r|`` in Mbps; smaller is better."""
    return abs(fair_share_bps - throughput_bps) / 1e6


def interval_scores(
    result,
    fair_share_bps: float = 0.0,
    alpha: float = 2.0,
    n_intervals: int = 4,
) -> List[ScoreEntry]:
    """Score one :class:`~repro.collector.rollout.RolloutResult` per interval."""
    stats = result.stats
    times = np.asarray(stats.times)
    thr = np.asarray(stats.throughput_series)
    rtt = np.asarray(stats.rtt_series)
    if len(times) < n_intervals:
        raise ValueError(
            f"need at least {n_intervals} samples to score, got {len(times)}"
        )
    multi = result.env.is_multi_flow
    chunks = np.array_split(np.arange(len(times)), n_intervals)
    entries = []
    for k, idx in enumerate(chunks):
        mean_thr = float(thr[idx].mean())
        if multi:
            fair = fair_share_bps or result.env.fair_share_bps(
                result.env.n_sharing
            )
            score = friendliness_score(mean_thr, fair)
            higher = False
        else:
            mean_rtt = float(rtt[idx].mean()) or result.env.min_rtt
            score = power_score(mean_thr, max(mean_rtt, 1e-4), alpha=alpha)
            higher = True
        entries.append(
            ScoreEntry(
                participant=result.scheme,
                env_id=result.env.env_id,
                interval=k,
                score=score,
                higher_is_better=higher,
            )
        )
    return entries


def determine_winners(
    entries: Sequence[ScoreEntry], margin: float = 0.10
) -> Dict[str, List[str]]:
    """Winners per scenario-interval.

    For higher-is-better scores, every participant with
    ``score >= (1 - margin) * best`` wins; for lower-is-better,
    ``score <= best + margin * spread`` wins (an additive margin, since
    S_fr's best can be ~0 where a multiplicative margin degenerates).

    Returns ``{f"{env_id}#{interval}": [winner names]}``.
    """
    if not 0 <= margin < 1:
        raise ValueError("margin must be in [0, 1)")
    cells: Dict[str, List[ScoreEntry]] = {}
    for e in entries:
        cells.setdefault(f"{e.env_id}#{e.interval}", []).append(e)
    winners: Dict[str, List[str]] = {}
    for key, cell in cells.items():
        higher = cell[0].higher_is_better
        scores = np.array([e.score for e in cell])
        if higher:
            best = scores.max()
            won = scores >= (1.0 - margin) * best
        else:
            best = scores.min()
            spread = max(scores.max() - best, 1e-9)
            won = scores <= best + margin * spread
        winners[key] = [e.participant for e, w in zip(cell, won) if w]
    return winners


def winning_rates(
    entries: Sequence[ScoreEntry], margin: float = 0.10
) -> Dict[str, float]:
    """Fraction of scenario-intervals each participant wins."""
    winners = determine_winners(entries, margin=margin)
    participants = sorted({e.participant for e in entries})
    n_cells = len(winners)
    if n_cells == 0:
        return {p: 0.0 for p in participants}
    counts = {p: 0 for p in participants}
    for won in winners.values():
        for p in won:
            counts[p] += 1
    return {p: counts[p] / n_cells for p in participants}
